package space

import (
	"sync"
	"sync/atomic"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

// This file is the indexed serving plane: the per-shard entry store
// and the subscription (parked waiter / notify registration) index.
//
// Associative lookup cost is the classic scaling bottleneck of the
// Linda paradigm the paper builds on, so the store keeps three
// intrusive views of every entry, all in id (total) order:
//
//   - the shard order list — every entry, for bulk scans;
//   - a kind bucket keyed by tuple.KindSig() (type, arity, field
//     kinds) — the only entries a typed wildcard template can match;
//     buckets of one shape chain together so untyped templates search
//     per-bucket instead of per-entry;
//   - a value bucket keyed by tuple.ValueSig() (signature of every
//     field value) — wildcard-free typed templates resolve to their
//     candidates in O(1).
//
// Waiters and notify registrations mirror the same three-way split
// (see classify), so a write probes exactly the buckets its
// signatures can satisfy instead of scanning every parked operation.

// entry is a stored tuple with its bookkeeping. The sequence number
// implements the total order the paper relies on ("the timestamp on
// each tuple determines a total order relation"). Intrusive links make
// removal O(1) from all three views.
type entry struct {
	id        uint64
	t         tuple.Tuple
	writtenAt sim.Time

	// exp is the entry's lease deadline, embedded so arming and
	// cancelling never allocate (wheel mode); cancelExp is the legacy
	// per-entry runtime timer (WithLegacyLeaseTimers only).
	exp       sim.WheelTimer
	cancelExp func()

	vh, kk, sk uint64 // value / kind / shape signatures of t

	prev, next   *entry // shard order
	kPrev, kNext *entry // kind bucket
	vPrev, vNext *entry // value bucket
	linked       bool
}

// kindBucket holds the entries sharing one (type, arity, kind
// signature) in id order. Buckets sharing a shape signature chain via
// nextShape; the set of (type, shape) combinations is bounded by the
// application's schema, so empty kind buckets are kept.
type kindBucket struct {
	head, tail *entry
	nextShape  *kindBucket
}

// valueBucket holds the entries sharing one exact value signature in
// id order. Value diversity is unbounded (every distinct tuple value
// is a key), so empty buckets are recycled through a per-shard free
// list and their map slots deleted.
type valueBucket struct {
	head, tail *entry
	free       *valueBucket
}

// subClass selects the index a subscription template lives in, and
// symmetrically which entry view serves a lookup with that template.
type subClass uint8

const (
	subValue subClass = iota // typed, wildcard-free: exact-match index
	subKind                  // typed, with wildcards: kind bucket
	subShape                 // untyped: shape-chained kind buckets
)

// classify resolves a template to its index class and bucket key. Any
// template pins arity and per-field kinds, so even the weakest class
// confines a lookup to one shape chain.
func classify(tmpl tuple.Tuple) (subClass, uint64) {
	if tmpl.Type == "" {
		return subShape, tmpl.ShapeSig()
	}
	if vh, ok := tmpl.ValueSig(); ok {
		return subValue, vh
	}
	return subKind, tmpl.KindSig()
}

// sub is a parked blocking read/take or a notify registration. done
// flips exactly once — wake, timeout, crash, or notify cancellation —
// and is CAS-claimed because shards race to complete replicated
// wildcard subscriptions.
type sub struct {
	tmpl  tuple.Tuple
	seq   uint64 // registration order (FIFO fairness authority)
	class subClass
	key   uint64
	done  atomic.Bool

	notify bool
	fn     func(tuple.Tuple) // notify callback

	take        bool
	cb          func(tuple.Tuple, error) // waiter callback
	cancelTimer func()

	// nodes holds this sub's per-shard list membership: one node on
	// its home shard when the template routes (see
	// Space.classifyRoute), one per shard otherwise (matching writes
	// can then land on any shard).
	nodes []subNode
}

// subNode is one shard's intrusive membership of a sub: bucket list
// plus the shard-wide list the crash sweep walks.
type subNode struct {
	s            *sub
	sh           *shard
	list         *subList
	bPrev, bNext *subNode
	aPrev, aNext *subNode
	linked       bool
}

// subList is a bucket of subscriptions in registration order. owner
// and key let an emptied list delete its own map slot before being
// recycled.
type subList struct {
	head, tail *subNode
	owner      map[uint64]*subList
	key        uint64
	free       *subList
}

// shard is one independently locked slice of the space. The unsharded
// space is exactly one shard; WithShards(n) hashes value-signature
// traffic across n of them.
type shard struct {
	sp *Space
	mu sync.Mutex

	head, tail *entry
	byID       map[uint64]*entry
	kinds      map[uint64]*kindBucket
	shapes     map[uint64]*kindBucket // shape sig → chain of kind buckets
	values     map[uint64]*valueBucket
	vFree      *valueBucket
	eFree      *entry // recycled entries (see getEntry/freeEntry)
	size       int

	subVal           map[uint64]*subList
	subKind          map[uint64]*subList
	subShape         map[uint64]*subList
	slFree           *subList
	allHead, allTail *subNode

	// Lease engine (see lease.go): the shard's deadline wheel, its one
	// re-armable sweep timer, the absolute time the timer is armed for
	// (0 = unarmed), and the reused batch-journal scratch.
	wheel   *sim.Wheel
	sweep   Timer
	sweepAt sim.Time
	expIDs  []uint64

	stats Stats
}

func newShard(sp *Space) *shard {
	sh := &shard{
		sp:       sp,
		byID:     make(map[uint64]*entry),
		kinds:    make(map[uint64]*kindBucket),
		shapes:   make(map[uint64]*kindBucket),
		values:   make(map[uint64]*valueBucket),
		subVal:   make(map[uint64]*subList),
		subKind:  make(map[uint64]*subList),
		subShape: make(map[uint64]*subList),
	}
	if !sp.legacyTimers {
		sh.wheel = sim.NewWheel(sp.rt.Now())
		sh.sweep = sp.rt.AfterBulk(sh.runSweep)
	}
	return sh
}

func (sh *shard) newValueBucket() *valueBucket {
	if b := sh.vFree; b != nil {
		sh.vFree = b.free
		b.free = nil
		return b
	}
	return &valueBucket{}
}

// getEntry pops a recycled entry from the shard freelist (or
// allocates); the caller holds the shard lock. A recycled entry keeps
// its tuple's field storage, so the usual next step —
// tuple.CloneInto(&e.t, src) — reuses it and the steady-state write
// path allocates nothing.
func (sh *shard) getEntry() *entry {
	if e := sh.eFree; e != nil {
		sh.eFree = e.next
		e.next = nil
		return e
	}
	return &entry{}
}

// freeEntry pushes an unlinked entry onto the shard freelist; the
// caller holds the shard lock. Only entries whose whole lifecycle the
// shard controlled are recycled — a consumed write, a probe-take hit
// (tuple already cloned out), an expiry sweep victim — NEVER entries
// held by a transaction or returned by reference: callers that handed
// e.t's storage to the outside world must clear e.t first. Lease
// handles caching a recycled entry stay safe: resolve() re-validates
// (linked && id match) under this same shard lock, and ids are never
// reused.
func (sh *shard) freeEntry(e *entry) {
	if e.linked || e.exp.Armed() || e.cancelExp != nil {
		return // defensive: never recycle an entry still indexed or timed
	}
	e.id = 0
	e.writtenAt = 0
	e.vh, e.kk, e.sk = 0, 0, 0
	e.next = sh.eFree
	sh.eFree = e
}

// link appends a stored entry to the tail of the shard order, its
// kind bucket and its value bucket; ids arrive ascending on every
// sequential path, so appends keep all views id-ordered. The caller
// holds the shard lock.
func (sh *shard) link(e *entry) {
	e.prev = sh.tail
	e.next = nil
	if sh.tail != nil {
		sh.tail.next = e
	} else {
		sh.head = e
	}
	sh.tail = e

	kb := sh.kinds[e.kk]
	if kb == nil {
		kb = &kindBucket{nextShape: sh.shapes[e.sk]}
		sh.kinds[e.kk] = kb
		sh.shapes[e.sk] = kb
	}
	e.kPrev = kb.tail
	e.kNext = nil
	if kb.tail != nil {
		kb.tail.kNext = e
	} else {
		kb.head = e
	}
	kb.tail = e

	vb := sh.values[e.vh]
	if vb == nil {
		vb = sh.newValueBucket()
		sh.values[e.vh] = vb
	}
	e.vPrev = vb.tail
	e.vNext = nil
	if vb.tail != nil {
		vb.tail.vNext = e
	} else {
		vb.head = e
	}
	vb.tail = e

	sh.byID[e.id] = e
	e.linked = true
	sh.size++
}

// insertSorted links e into its id-ordered position in all three
// views (used by transaction aborts restoring held entries); the
// caller holds the shard lock. Restored entries are usually near the
// tail, so each walk starts there.
func (sh *shard) insertSorted(e *entry) {
	at := sh.tail
	for at != nil && at.id > e.id {
		at = at.prev
	}
	if at == nil {
		e.prev = nil
		e.next = sh.head
		if sh.head != nil {
			sh.head.prev = e
		} else {
			sh.tail = e
		}
		sh.head = e
	} else {
		e.prev = at
		e.next = at.next
		if at.next != nil {
			at.next.prev = e
		} else {
			sh.tail = e
		}
		at.next = e
	}

	kb := sh.kinds[e.kk]
	if kb == nil {
		kb = &kindBucket{nextShape: sh.shapes[e.sk]}
		sh.kinds[e.kk] = kb
		sh.shapes[e.sk] = kb
	}
	kat := kb.tail
	for kat != nil && kat.id > e.id {
		kat = kat.kPrev
	}
	if kat == nil {
		e.kPrev = nil
		e.kNext = kb.head
		if kb.head != nil {
			kb.head.kPrev = e
		} else {
			kb.tail = e
		}
		kb.head = e
	} else {
		e.kPrev = kat
		e.kNext = kat.kNext
		if kat.kNext != nil {
			kat.kNext.kPrev = e
		} else {
			kb.tail = e
		}
		kat.kNext = e
	}

	vb := sh.values[e.vh]
	if vb == nil {
		vb = sh.newValueBucket()
		sh.values[e.vh] = vb
	}
	vat := vb.tail
	for vat != nil && vat.id > e.id {
		vat = vat.vPrev
	}
	if vat == nil {
		e.vPrev = nil
		e.vNext = vb.head
		if vb.head != nil {
			vb.head.vPrev = e
		} else {
			vb.tail = e
		}
		vb.head = e
	} else {
		e.vPrev = vat
		e.vNext = vat.vNext
		if vat.vNext != nil {
			vat.vNext.vPrev = e
		} else {
			vb.tail = e
		}
		vat.vNext = e
	}

	sh.byID[e.id] = e
	e.linked = true
	sh.size++
}

// unlink splices an entry out of all three views in O(1), cancelling
// its expiry timer and journalling the removal; the caller holds the
// shard lock. It reports whether the entry was present.
func (sh *shard) unlink(e *entry) bool {
	if !sh.unlinkNoLog(e) {
		return false
	}
	sh.sp.logR(e.id)
	return true
}

// unlinkNoLog is unlink without the journal write: the expiry sweep
// uses it to batch a whole slot's removal records into one journal
// pass. Every other caller wants unlink.
func (sh *shard) unlinkNoLog(e *entry) bool {
	if !e.linked {
		return false
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}

	kb := sh.kinds[e.kk]
	if e.kPrev != nil {
		e.kPrev.kNext = e.kNext
	} else {
		kb.head = e.kNext
	}
	if e.kNext != nil {
		e.kNext.kPrev = e.kPrev
	} else {
		kb.tail = e.kPrev
	}

	vb := sh.values[e.vh]
	if e.vPrev != nil {
		e.vPrev.vNext = e.vNext
	} else {
		vb.head = e.vNext
	}
	if e.vNext != nil {
		e.vNext.vPrev = e.vPrev
	} else {
		vb.tail = e.vPrev
	}
	if vb.head == nil {
		delete(sh.values, e.vh)
		vb.free = sh.vFree
		sh.vFree = vb
	}

	e.prev, e.next, e.kPrev, e.kNext, e.vPrev, e.vNext = nil, nil, nil, nil, nil, nil
	e.linked = false
	delete(sh.byID, e.id)
	sh.size--
	sh.disarmLease(e)
	return true
}

// removeByID unlinks an entry; the caller holds the shard lock.
func (sh *shard) removeByID(id uint64) *entry {
	e := sh.byID[id]
	if e == nil {
		return nil
	}
	sh.unlink(e)
	return e
}

// oldest returns the oldest entry of this shard matching the
// template, or nil; the caller holds the shard lock. Every view is
// id-ordered, so the first match in a bucket is the bucket's oldest;
// only the untyped class compares across buckets.
func (sh *shard) oldest(class subClass, key uint64, tmpl tuple.Tuple) *entry {
	switch class {
	case subValue:
		if b := sh.values[key]; b != nil {
			for e := b.head; e != nil; e = e.vNext {
				if tmpl.Matches(e.t) {
					return e
				}
			}
		}
	case subKind:
		if b := sh.kinds[key]; b != nil {
			for e := b.head; e != nil; e = e.kNext {
				if tmpl.Matches(e.t) {
					return e
				}
			}
		}
	case subShape:
		var best *entry
		for b := sh.shapes[key]; b != nil; b = b.nextShape {
			for e := b.head; e != nil; e = e.kNext {
				if tmpl.Matches(e.t) {
					if best == nil || e.id < best.id {
						best = e
					}
					break
				}
			}
		}
		return best
	}
	return nil
}

// countIn counts this shard's matches; the caller holds the shard lock.
func (sh *shard) countIn(class subClass, key uint64, tmpl tuple.Tuple) int {
	n := 0
	switch class {
	case subValue:
		if b := sh.values[key]; b != nil {
			for e := b.head; e != nil; e = e.vNext {
				if tmpl.Matches(e.t) {
					n++
				}
			}
		}
	case subKind:
		if b := sh.kinds[key]; b != nil {
			for e := b.head; e != nil; e = e.kNext {
				if tmpl.Matches(e.t) {
					n++
				}
			}
		}
	case subShape:
		for b := sh.shapes[key]; b != nil; b = b.nextShape {
			for e := b.head; e != nil; e = e.kNext {
				if tmpl.Matches(e.t) {
					n++
				}
			}
		}
	}
	return n
}

// scanHit is one Scan candidate; ids let cross-bucket and cross-shard
// results merge back into write order.
type scanHit struct {
	id uint64
	t  tuple.Tuple
}

// scanIn appends clones of this shard's matches; the caller holds the
// shard lock.
func (sh *shard) scanIn(class subClass, key uint64, tmpl tuple.Tuple, out []scanHit) []scanHit {
	switch class {
	case subValue:
		if b := sh.values[key]; b != nil {
			for e := b.head; e != nil; e = e.vNext {
				if tmpl.Matches(e.t) {
					out = append(out, scanHit{e.id, e.t.Clone()})
				}
			}
		}
	case subKind:
		if b := sh.kinds[key]; b != nil {
			for e := b.head; e != nil; e = e.kNext {
				if tmpl.Matches(e.t) {
					out = append(out, scanHit{e.id, e.t.Clone()})
				}
			}
		}
	case subShape:
		for b := sh.shapes[key]; b != nil; b = b.nextShape {
			for e := b.head; e != nil; e = e.kNext {
				if tmpl.Matches(e.t) {
					out = append(out, scanHit{e.id, e.t.Clone()})
				}
			}
		}
	}
	return out
}

func (sh *shard) subMap(class subClass) map[uint64]*subList {
	switch class {
	case subValue:
		return sh.subVal
	case subKind:
		return sh.subKind
	default:
		return sh.subShape
	}
}

// addSub appends a node for s to this shard's bucket for s's class
// and key, and to the shard-wide list; the caller holds the shard
// lock. Appending under the lock keeps every bucket in registration
// (seq) order, which is what makes "first match in bucket" the
// bucket's FIFO-oldest.
func (sh *shard) addSub(s *sub, node *subNode) {
	m := sh.subMap(s.class)
	l := m[s.key]
	if l == nil {
		if l = sh.slFree; l != nil {
			sh.slFree = l.free
			l.free = nil
		} else {
			l = &subList{}
		}
		l.owner, l.key = m, s.key
		m[s.key] = l
	}
	node.s, node.sh, node.list = s, sh, l
	node.bPrev = l.tail
	node.bNext = nil
	if l.tail != nil {
		l.tail.bNext = node
	} else {
		l.head = node
	}
	l.tail = node
	node.aPrev = sh.allTail
	node.aNext = nil
	if sh.allTail != nil {
		sh.allTail.aNext = node
	} else {
		sh.allHead = node
	}
	sh.allTail = node
	node.linked = true
}

// dropSub unlinks a node from its bucket and the shard-wide list in
// O(1); the caller holds the shard lock. Emptied buckets free their
// map slot and recycle.
func (sh *shard) dropSub(node *subNode) {
	if !node.linked {
		return
	}
	l := node.list
	if node.bPrev != nil {
		node.bPrev.bNext = node.bNext
	} else {
		l.head = node.bNext
	}
	if node.bNext != nil {
		node.bNext.bPrev = node.bPrev
	} else {
		l.tail = node.bPrev
	}
	if l.head == nil {
		delete(l.owner, l.key)
		l.owner = nil
		l.free = sh.slFree
		sh.slFree = l
	}
	if node.aPrev != nil {
		node.aPrev.aNext = node.aNext
	} else {
		sh.allHead = node.aNext
	}
	if node.aNext != nil {
		node.aNext.aPrev = node.aPrev
	} else {
		sh.allTail = node.aPrev
	}
	node.bPrev, node.bNext, node.aPrev, node.aNext, node.list = nil, nil, nil, nil, nil
	node.linked = false
}

// unlinkAll drops every remaining shard node of a completed sub;
// called WITHOUT any shard lock held (wake and timeout paths run it
// after their critical sections). For an unsharded space the single
// node is usually already dropped and this is one uncontended lock.
func (sb *sub) unlinkAll() {
	for i := range sb.nodes {
		n := &sb.nodes[i]
		if n.sh == nil {
			continue
		}
		n.sh.mu.Lock()
		n.sh.dropSub(n)
		n.sh.mu.Unlock()
	}
}
