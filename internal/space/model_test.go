package space

import (
	"io"
	"math/rand"
	"testing"

	"tpspace/internal/tuple"
)

// refSpace is a deliberately naive reference implementation of the
// tuplespace store semantics (FIFO total order, oldest-match
// take/read) used as the oracle for model-based testing.
type refSpace struct {
	entries []tuple.Tuple
}

func (r *refSpace) write(t tuple.Tuple) { r.entries = append(r.entries, t.Clone()) }

func (r *refSpace) findOldest(tmpl tuple.Tuple) int {
	for i, e := range r.entries {
		if tmpl.Matches(e) {
			return i
		}
	}
	return -1
}

func (r *refSpace) take(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if i := r.findOldest(tmpl); i >= 0 {
		e := r.entries[i]
		r.entries = append(r.entries[:i], r.entries[i+1:]...)
		return e, true
	}
	return tuple.Tuple{}, false
}

func (r *refSpace) read(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if i := r.findOldest(tmpl); i >= 0 {
		return r.entries[i], true
	}
	return tuple.Tuple{}, false
}

func (r *refSpace) count(tmpl tuple.Tuple) int {
	n := 0
	for _, e := range r.entries {
		if tmpl.Matches(e) {
			n++
		}
	}
	return n
}

// randomTuple draws from a small universe so matches are frequent.
func randomTuple(rng *rand.Rand) tuple.Tuple {
	types := []string{"a", "b", "c"}
	return tuple.New(types[rng.Intn(len(types))],
		tuple.Int("x", int64(rng.Intn(4))),
		tuple.String("s", string(rune('p'+rng.Intn(3)))),
	)
}

// randomTemplate derives a template that may or may not match.
func randomTemplate(rng *rand.Rand) tuple.Tuple {
	t := randomTuple(rng)
	if rng.Intn(2) == 0 {
		t.Type = "" // any type
	}
	if rng.Intn(2) == 0 {
		t.Fields[0] = tuple.AnyInt("x")
	}
	if rng.Intn(2) == 0 {
		t.Fields[1] = tuple.AnyString("s")
	}
	return t
}

func TestModelBasedAgainstReference(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, s := simSpace()
		ref := &refSpace{}
		for step := 0; step < 400; step++ {
			switch rng.Intn(5) {
			case 0, 1: // write
				tp := randomTuple(rng)
				if _, err := s.Write(tp, NoLease); err != nil {
					t.Fatalf("seed %d step %d: write: %v", seed, step, err)
				}
				ref.write(tp)
			case 2: // takeIfExists
				tmpl := randomTemplate(rng)
				got, ok := s.TakeIfExists(tmpl)
				want, wok := ref.take(tmpl)
				if ok != wok {
					t.Fatalf("seed %d step %d: take ok=%v want %v (tmpl %v)", seed, step, ok, wok, tmpl)
				}
				if ok && !got.Equal(want) {
					t.Fatalf("seed %d step %d: take got %v want %v", seed, step, got, want)
				}
			case 3: // readIfExists
				tmpl := randomTemplate(rng)
				got, ok := s.ReadIfExists(tmpl)
				want, wok := ref.read(tmpl)
				if ok != wok || (ok && !got.Equal(want)) {
					t.Fatalf("seed %d step %d: read got %v,%v want %v,%v", seed, step, got, ok, want, wok)
				}
			case 4: // count + size
				tmpl := randomTemplate(rng)
				if got, want := s.Count(tmpl), ref.count(tmpl); got != want {
					t.Fatalf("seed %d step %d: count %d want %d", seed, step, got, want)
				}
				if s.Size() != len(ref.entries) {
					t.Fatalf("seed %d step %d: size %d want %d", seed, step, s.Size(), len(ref.entries))
				}
			}
		}
	}
}

func TestModelBasedWithJournalReplay(t *testing.T) {
	// The same random walk, journaled; after every walk, a replayed
	// space must agree with the reference on every template.
	for seed := int64(100); seed < 108; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var journalBuf writerBuffer
		_, s := simSpace()
		s.SetJournal(NewJournal(&journalBuf))
		ref := &refSpace{}
		for step := 0; step < 200; step++ {
			if rng.Intn(3) != 0 {
				tp := randomTuple(rng)
				s.Write(tp, NoLease)
				ref.write(tp)
			} else {
				tmpl := randomTemplate(rng)
				s.TakeIfExists(tmpl)
				ref.take(tmpl)
			}
		}
		s.journal.Flush()

		_, s2 := simSpace()
		if _, err := s2.Replay(&journalBuf); err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if s2.Size() != len(ref.entries) {
			t.Fatalf("seed %d: replayed size %d want %d", seed, s2.Size(), len(ref.entries))
		}
		// Drain both in FIFO order and compare.
		all := tuple.New("", tuple.AnyInt("x"), tuple.AnyString("s"))
		for i := range ref.entries {
			got, ok := s2.TakeIfExists(all)
			if !ok || !got.Equal(ref.entries[i]) {
				t.Fatalf("seed %d: drained %d: %v vs %v", seed, i, got, ref.entries[i])
			}
		}
	}
}

// writerBuffer is a bytes.Buffer-alike usable as both journal sink
// and replay source without importing bytes twice (keeps reads from
// consuming the written prefix concurrently).
type writerBuffer struct {
	data []byte
	pos  int
}

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.data = append(w.data, p...)
	return len(p), nil
}

func (w *writerBuffer) Read(p []byte) (int, error) {
	if w.pos >= len(w.data) {
		return 0, io.EOF
	}
	n := copy(p, w.data[w.pos:])
	w.pos += n
	return n, nil
}
