package space

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

func sleepMs(n int) { time.Sleep(time.Duration(n) * time.Millisecond) }

func simSpace() (*sim.Kernel, *Space) {
	k := sim.NewKernel(1)
	return k, New(SimRuntime{K: k})
}

func job(op string, n int64) tuple.Tuple {
	return tuple.New("job", tuple.String("op", op), tuple.Int("n", n))
}

func anyJob() tuple.Tuple {
	return tuple.New("job", tuple.AnyString("op"), tuple.AnyInt("n"))
}

func TestWriteReadTake(t *testing.T) {
	_, s := simSpace()
	if _, err := s.Write(job("fft", 64), NoLease); err != nil {
		t.Fatal(err)
	}
	got, ok := s.ReadIfExists(anyJob())
	if !ok || got.Fields[0].Str != "fft" {
		t.Fatalf("read: %v %v", got, ok)
	}
	if s.Size() != 1 {
		t.Fatal("read removed the entry")
	}
	got, ok = s.TakeIfExists(anyJob())
	if !ok || got.Fields[1].Int != 64 {
		t.Fatalf("take: %v %v", got, ok)
	}
	if s.Size() != 0 {
		t.Fatal("take did not remove the entry")
	}
	if _, ok := s.TakeIfExists(anyJob()); ok {
		t.Fatal("take from empty space succeeded")
	}
}

func TestWriteRejectsTemplates(t *testing.T) {
	_, s := simSpace()
	if _, err := s.Write(anyJob(), NoLease); err != ErrTemplateWrite {
		t.Fatalf("err = %v, want ErrTemplateWrite", err)
	}
}

func TestWriteIsolatesCallerMutation(t *testing.T) {
	_, s := simSpace()
	tp := tuple.New("t", tuple.Bytes("b", []byte{1, 2, 3}))
	if _, err := s.Write(tp, NoLease); err != nil {
		t.Fatal(err)
	}
	tp.Fields[0].Bytes[0] = 99
	got, _ := s.ReadIfExists(tuple.New("t", tuple.AnyBytes("b")))
	if got.Fields[0].Bytes[0] != 1 {
		t.Fatal("space shares storage with writer")
	}
}

func TestTotalOrderFIFO(t *testing.T) {
	// "The timestamp on each tuple determines a total order relation":
	// takes return matching entries oldest first.
	_, s := simSpace()
	for i := int64(0); i < 5; i++ {
		s.Write(job("fft", i), NoLease)
	}
	for i := int64(0); i < 5; i++ {
		got, ok := s.TakeIfExists(anyJob())
		if !ok || got.Fields[1].Int != i {
			t.Fatalf("take %d returned %v", i, got)
		}
	}
}

func TestAssociativeAddressing(t *testing.T) {
	_, s := simSpace()
	s.Write(job("fft", 1), NoLease)
	s.Write(job("dct", 2), NoLease)
	s.Write(tuple.New("state", tuple.String("v", "ok")), NoLease)
	got, ok := s.TakeIfExists(tuple.New("job", tuple.String("op", "dct"), tuple.AnyInt("n")))
	if !ok || got.Fields[1].Int != 2 {
		t.Fatalf("associative take: %v %v", got, ok)
	}
	if s.Count(anyJob()) != 1 {
		t.Fatalf("count = %d", s.Count(anyJob()))
	}
	if s.Size() != 2 {
		t.Fatalf("size = %d", s.Size())
	}
}

func TestBlockingTakeSatisfiedByLaterWrite(t *testing.T) {
	k, s := simSpace()
	var got tuple.Tuple
	var ok bool
	var at sim.Time
	s.Take(anyJob(), sim.Forever, func(tp tuple.Tuple, o bool) { got, ok, at = tp, o, k.Now() })
	k.Schedule(5*sim.Second, func() { s.Write(job("fft", 9), NoLease) })
	k.Run()
	if !ok || got.Fields[1].Int != 9 {
		t.Fatalf("blocked take got %v %v", got, ok)
	}
	if at != sim.Time(5*sim.Second) {
		t.Fatalf("take completed at %v", at)
	}
	if s.Size() != 0 {
		t.Fatal("entry stored despite pending take")
	}
}

func TestBlockingTakeTimeout(t *testing.T) {
	k, s := simSpace()
	var called bool
	var ok bool
	s.Take(anyJob(), 3*sim.Second, func(tp tuple.Tuple, o bool) { called, ok = true, o })
	k.Run()
	if !called || ok {
		t.Fatalf("timeout callback: called=%v ok=%v", called, ok)
	}
	if k.Now() != sim.Time(3*sim.Second) {
		t.Fatalf("timed out at %v", k.Now())
	}
	if s.Stats().Timeouts != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestZeroTimeoutIsIfExists(t *testing.T) {
	_, s := simSpace()
	called := false
	s.Take(anyJob(), 0, func(tp tuple.Tuple, ok bool) {
		called = true
		if ok {
			t.Error("zero-timeout take on empty space succeeded")
		}
	})
	if !called {
		t.Fatal("zero-timeout take did not return synchronously")
	}
}

func TestWriteSatisfiesAllReadersOneTaker(t *testing.T) {
	k, s := simSpace()
	reads := 0
	takes := 0
	for i := 0; i < 3; i++ {
		s.Read(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
			if ok {
				reads++
			}
		})
	}
	for i := 0; i < 2; i++ {
		s.Take(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
			if ok {
				takes++
			}
		})
	}
	s.Write(job("fft", 5), NoLease)
	k.Run()
	if reads != 3 {
		t.Fatalf("reads = %d, want 3", reads)
	}
	if takes != 1 {
		t.Fatalf("takes = %d, want 1 (single entry)", takes)
	}
	if s.Size() != 0 {
		t.Fatal("entry stored despite consumption")
	}
	// The second taker is still parked; a second write satisfies it.
	s.Write(job("fft", 6), NoLease)
	k.Run()
	if takes != 2 {
		t.Fatalf("second take not satisfied: %d", takes)
	}
}

func TestTakersServedFIFO(t *testing.T) {
	_, s := simSpace()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Take(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
			if ok {
				order = append(order, i)
			}
		})
	}
	for i := 0; i < 3; i++ {
		s.Write(job("x", int64(i)), NoLease)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("takers served out of order: %v", order)
	}
}

func TestLeaseExpiry(t *testing.T) {
	k, s := simSpace()
	l, err := s.Write(job("fft", 1), 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Expiry != sim.Time(10*sim.Second) {
		t.Fatalf("lease expiry = %v", l.Expiry)
	}
	k.RunUntil(sim.Time(9 * sim.Second))
	if s.Size() != 1 {
		t.Fatal("entry gone before lease expiry")
	}
	k.RunUntil(sim.Time(11 * sim.Second))
	if s.Size() != 0 {
		t.Fatal("entry survived lease expiry")
	}
	if s.Stats().Expired != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestExpiredEntryNotTakeable(t *testing.T) {
	// This is the "Out of Time" mechanism of Table 4: a take issued
	// after the entry lifetime has lapsed finds nothing.
	k, s := simSpace()
	s.Write(job("entry", 1), 160*sim.Second)
	k.RunUntil(sim.Time(161 * sim.Second))
	if _, ok := s.TakeIfExists(anyJob()); ok {
		t.Fatal("take succeeded after lease expiry")
	}
}

func TestTakeCancelsExpiryTimer(t *testing.T) {
	k, s := simSpace()
	s.Write(job("fft", 1), 10*sim.Second)
	if _, ok := s.TakeIfExists(anyJob()); !ok {
		t.Fatal("take failed")
	}
	k.Run()
	if s.Stats().Expired != 0 {
		t.Fatal("expiry fired for a taken entry")
	}
	if k.Pending() != 0 {
		t.Fatalf("stale timer events: %d", k.Pending())
	}
}

func TestLeaseCancel(t *testing.T) {
	k, s := simSpace()
	l, _ := s.Write(job("fft", 1), NoLease)
	if !l.Cancel() {
		t.Fatal("cancel failed")
	}
	if l.Cancel() {
		t.Fatal("double cancel succeeded")
	}
	if s.Size() != 0 {
		t.Fatal("entry survived cancel")
	}
	if s.Stats().Cancelled != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	k.Run()
}

func TestNotify(t *testing.T) {
	_, s := simSpace()
	var seen []tuple.Tuple
	cancel := s.Notify(anyJob(), func(tp tuple.Tuple) { seen = append(seen, tp) })
	s.Write(job("a", 1), NoLease)
	s.Write(tuple.New("other", tuple.Int("x", 1)), NoLease)
	s.Write(job("b", 2), NoLease)
	cancel()
	s.Write(job("c", 3), NoLease)
	if len(seen) != 2 {
		t.Fatalf("notified %d times, want 2", len(seen))
	}
	if seen[0].Fields[0].Str != "a" || seen[1].Fields[0].Str != "b" {
		t.Fatalf("notifications: %v", seen)
	}
	if s.Stats().Notifies != 2 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestNotifyFiresEvenWhenConsumed(t *testing.T) {
	_, s := simSpace()
	notified := false
	s.Notify(anyJob(), func(tuple.Tuple) { notified = true })
	s.Take(anyJob(), sim.Forever, func(tuple.Tuple, bool) {})
	s.Write(job("x", 1), NoLease)
	if !notified {
		t.Fatal("notify skipped for a consumed write")
	}
}

func TestReadWaitTakeWaitRealRuntime(t *testing.T) {
	s := New(NewRealRuntime())
	// A parked taker satisfied by a later write from another goroutine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if got, ok := s.TakeWait(anyJob(), sim.Duration(5*sim.Second)); !ok || got.Fields[1].Int != 7 {
			t.Errorf("TakeWait: %v %v", got, ok)
		}
	}()
	sleepMs(10)
	if _, err := s.Write(job("fft", 7), NoLease); err != nil {
		t.Fatal(err)
	}
	<-done
	// ReadWait against a stored entry returns without consuming it.
	s.Write(job("fft", 8), NoLease)
	if got, ok := s.ReadWait(anyJob(), sim.Duration(5*sim.Second)); !ok || got.Fields[1].Int != 8 {
		t.Fatalf("ReadWait: %v %v", got, ok)
	}
	if s.Size() != 1 {
		t.Fatal("ReadWait consumed the entry")
	}
}

func TestRealRuntimeLeaseExpiry(t *testing.T) {
	s := New(NewRealRuntime())
	s.Write(job("fft", 1), 20*sim.Millisecond)
	if got, ok := s.TakeWait(anyJob(), sim.Duration(sim.Second)); !ok || got.Fields[1].Int != 1 {
		t.Fatalf("immediate take failed: %v %v", got, ok)
	}
	s.Write(job("fft", 2), 20*sim.Millisecond)
	// Wait out the lease, then look: nothing should remain.
	deadlineTake := func() bool {
		_, ok := s.TakeIfExists(anyJob())
		return ok
	}
	// Poll until expiry (bounded).
	for i := 0; i < 100; i++ {
		if s.Size() == 0 {
			break
		}
		sleepMs(5)
	}
	if deadlineTake() {
		t.Fatal("entry survived wall-clock lease expiry")
	}
}

func TestQuickWriteTakeConservation(t *testing.T) {
	// Property: after W writes and T takes (T <= W) of the same type,
	// exactly W-T entries remain, and every take returns ok.
	f := func(w8, t8 uint8) bool {
		w := int(w8%20) + 1
		tk := int(t8) % (w + 1)
		_, s := simSpace()
		for i := 0; i < w; i++ {
			if _, err := s.Write(job("p", int64(i)), NoLease); err != nil {
				return false
			}
		}
		for i := 0; i < tk; i++ {
			if _, ok := s.TakeIfExists(anyJob()); !ok {
				return false
			}
		}
		return s.Size() == w-tk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(14))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReadNeverRemoves(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%10) + 1
		_, s := simSpace()
		for i := 0; i < n; i++ {
			s.Write(job("p", int64(i)), NoLease)
		}
		for i := 0; i < 50; i++ {
			if _, ok := s.ReadIfExists(anyJob()); !ok {
				return false
			}
		}
		return s.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccessRealRuntime(t *testing.T) {
	// Hammer the space from many goroutines under -race.
	s := New(NewRealRuntime())
	var wg sync.WaitGroup
	const n = 20
	wg.Add(2 * n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.Write(job("c", int64(i*100+j)), NoLease)
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.TakeWait(anyJob(), sim.Duration(5*sim.Second))
			}
		}()
	}
	wg.Wait()
	if s.Size() != 0 {
		t.Fatalf("size = %d after balanced writes/takes", s.Size())
	}
	st := s.Stats()
	if st.Writes != n*50 || st.Takes != n*50 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStressManyEntriesManyTypes(t *testing.T) {
	// 10k entries across 100 types: typed operations stay exact and
	// the store drains to empty.
	_, s := simSpace()
	const types = 100
	const perType = 100
	for i := 0; i < types*perType; i++ {
		ty := i % types
		tp := tuple.New(typeName(ty), tuple.Int("seq", int64(i/types)))
		if _, err := s.Write(tp, NoLease); err != nil {
			t.Fatal(err)
		}
	}
	if s.Size() != types*perType {
		t.Fatalf("size = %d", s.Size())
	}
	for ty := 0; ty < types; ty++ {
		tmpl := tuple.New(typeName(ty), tuple.AnyInt("seq"))
		if got := s.Count(tmpl); got != perType {
			t.Fatalf("type %d count = %d", ty, got)
		}
		for i := 0; i < perType; i++ {
			got, ok := s.TakeIfExists(tmpl)
			if !ok || got.Fields[0].Int != int64(i) {
				t.Fatalf("type %d take %d: %v %v", ty, i, got, ok)
			}
		}
	}
	if s.Size() != 0 {
		t.Fatalf("store not drained: %d", s.Size())
	}
}

func typeName(i int) string { return "type-" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

func TestNegativeZeroFloatIndexedMatch(t *testing.T) {
	// Matches compares floats with ==, under which -0.0 equals +0.0;
	// the value signature (exact-match bucket and shard routing) must
	// agree, or a +0.0 template misses a stored -0.0 tuple.
	for _, shards := range []int{1, 4} {
		k := sim.NewKernel(1)
		s := New(SimRuntime{K: k}, WithShards(shards))
		reading := func(v float64) tuple.Tuple {
			return tuple.New("reading", tuple.Float("v", v))
		}
		negZero := math.Copysign(0, -1)
		s.Write(reading(negZero), NoLease)
		if _, ok := s.ReadIfExists(reading(0)); !ok {
			t.Fatalf("shards=%d: +0.0 template misses stored -0.0", shards)
		}
		if _, ok := s.TakeIfExists(reading(0)); !ok {
			t.Fatalf("shards=%d: take with +0.0 template misses stored -0.0", shards)
		}
		// And the waiter index: a take parked on +0.0 must wake on a
		// -0.0 write.
		woken := false
		s.Take(reading(0), sim.Forever, func(_ tuple.Tuple, ok bool) { woken = ok })
		s.Write(reading(negZero), NoLease)
		if !woken {
			t.Fatalf("shards=%d: parked +0.0 take not woken by -0.0 write", shards)
		}
		if s.Size() != 0 {
			t.Fatalf("shards=%d: size = %d after consumed write", shards, s.Size())
		}
	}
}
