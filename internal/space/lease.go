package space

import "tpspace/internal/sim"

// lease.go is the lease engine: one hierarchical timing wheel and one
// re-armable runtime timer per shard replace the historical
// timer-per-entry scheme (one kernel event or time.AfterFunc per
// leased entry, untenable at the 10^7 outstanding leases the ROADMAP
// targets). Arming and cancelling a lease are intrusive wheel
// operations on storage embedded in the entry — 0 allocations — and
// expiry is a batched sweep: one shard lock acquisition unlinks every
// entry that has lapsed and journals the removals in one pass.
//
// Determinism: the wheel never rounds a deadline (see sim.Wheel). The
// sweep timer is always armed at or before the earliest armed
// deadline, and each sweep expires exactly the entries with
// expiry <= Now() before re-arming at the wheel's next wake. Under a
// SimRuntime, sweeps are therefore kernel events that fire at exactly
// the instants the per-entry timers used to fire, which keeps
// simulation outputs (and the paper CLI) byte-identical to the legacy
// scheme; spurious wakes (a cancelled earliest lease, a cascade
// boundary) advance the wheel and re-arm without observable effect.
//
// The legacy scheme is retained behind WithLegacyLeaseTimers as the
// in-binary baseline for `tpbench -leasebench` and as the oracle for
// the lease property test.

// WithLegacyLeaseTimers arms one runtime timer per leased entry (the
// pre-wheel scheme) instead of the per-shard timing wheel. It exists
// as the measured baseline and the test oracle; production callers
// should never need it.
func WithLegacyLeaseTimers() Option {
	return func(c *config) { c.legacyTimers = true }
}

// armLease schedules expiry of a linked entry at the given absolute
// time; the caller holds the shard lock. In wheel mode this is an
// O(1) intrusive insert plus, when the new deadline precedes the
// scheduled sweep, one timer reset.
func (sh *shard) armLease(e *entry, expiry sim.Time, d sim.Duration) {
	s := sh.sp
	if s.legacyTimers {
		id := e.id
		e.cancelExp = s.rt.After(d, func() {
			sh.mu.Lock()
			if sh.removeByID(id) != nil {
				sh.stats.Expired++
			}
			sh.mu.Unlock()
		})
		return
	}
	e.exp.Owner = e
	sh.wheel.Add(&e.exp, expiry)
	if sh.sweepAt == 0 || expiry < sh.sweepAt {
		sh.scheduleSweep(expiry)
	}
}

// disarmLease cancels a pending expiry; the caller holds the shard
// lock. The sweep timer is left alone unless the wheel emptied — a
// sweep firing with nothing due is harmless (it re-arms from the
// wheel), but a timer armed under an empty wheel would tick forever.
func (sh *shard) disarmLease(e *entry) {
	if sh.sp.legacyTimers {
		if e.cancelExp != nil {
			e.cancelExp()
			e.cancelExp = nil
		}
		return
	}
	if sh.wheel.Cancel(&e.exp) && sh.wheel.Len() == 0 && sh.sweepAt != 0 {
		sh.sweep.Stop()
		sh.sweepAt = 0
	}
}

// renewLease replaces a linked entry's pending expiry in place; the
// caller holds the shard lock. In wheel mode this rides Wheel.Reset's
// same-slot fast path — a renewal that stays within the timer's
// current slot is one deadline store — instead of a full
// disarm+re-arm round trip.
func (sh *shard) renewLease(e *entry, expiry sim.Time, d sim.Duration) {
	if sh.sp.legacyTimers {
		sh.disarmLease(e)
		sh.armLease(e, expiry, d)
		return
	}
	e.exp.Owner = e
	sh.wheel.Reset(&e.exp, expiry)
	if sh.sweepAt == 0 || expiry < sh.sweepAt {
		sh.scheduleSweep(expiry)
	}
}

// scheduleSweep (re-)arms the shard sweep timer to fire at the given
// absolute time; the caller holds the shard lock.
func (sh *shard) scheduleSweep(at sim.Time) {
	sh.sweepAt = at
	d := sim.Duration(at - sh.sp.rt.Now())
	if d < 0 {
		d = 0
	}
	sh.sweep.Reset(d)
}

// runSweep is the shard sweep timer's callback: expire, under one
// lock acquisition, every lease that has lapsed. Expired entries are
// unlinked without per-entry journal writes; the removals are logged
// in one batch afterwards (one journal lock, one buffered run of
// records — same bytes as the per-entry path, so replay is
// unaffected).
func (sh *shard) runSweep() {
	s := sh.sp
	sh.mu.Lock()
	now := s.rt.Now()
	ids := sh.expIDs[:0]
	for t := sh.wheel.AdvanceTo(now); t != nil; {
		next := t.Next()
		e := t.Owner.(*entry)
		if e.linked {
			sh.unlinkNoLog(e)
			sh.stats.Expired++
			ids = append(ids, e.id)
			sh.freeEntry(e) // fully detached; nothing references it now
		}
		t = next
	}
	sh.expIDs = ids[:0] // retain capacity across sweeps
	if len(ids) > 0 && s.journal != nil {
		s.journal.logRemoveBatch(ids)
	}
	sh.sweepAt = 0
	if wake, ok := sh.wheel.NextWake(); ok {
		sh.scheduleSweep(wake)
	}
	sh.mu.Unlock()
}

// drainLeases discards every armed lease wholesale (the crash path);
// the caller holds the shard lock. Legacy timers are cancelled by the
// caller's entry walk.
func (sh *shard) drainLeases() {
	if sh.sp.legacyTimers {
		return
	}
	sh.wheel.DrainAll()
	if sh.sweepAt != 0 {
		sh.sweep.Stop()
		sh.sweepAt = 0
	}
}
