package space

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

func simSharded(n int) (*sim.Kernel, *Space) {
	k := sim.NewKernel(1)
	return k, New(SimRuntime{K: k}, WithShards(n))
}

func TestWithShardsConfiguration(t *testing.T) {
	_, s1 := simSpace()
	if s1.Shards() != 1 {
		t.Fatalf("default shards = %d", s1.Shards())
	}
	_, s4 := simSharded(4)
	if s4.Shards() != 4 {
		t.Fatalf("WithShards(4) shards = %d", s4.Shards())
	}
	if _, s := simSharded(0); s.Shards() != 1 {
		t.Fatalf("WithShards(0) shards = %d", s.Shards())
	}
}

// TestShardedTakersServedFIFO is TestTakersServedFIFO with wildcard
// templates parked across every shard: registration order must still
// decide who wakes, whichever shard the writes hash to.
func TestShardedTakersServedFIFO(t *testing.T) {
	_, s := simSharded(4)
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		s.Take(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
			if ok {
				order = append(order, i)
			}
		})
	}
	for i := 0; i < 6; i++ {
		// Under default kind routing these share a home shard; under
		// WithValueRouting they would spread. Either way registration
		// order decides the winner.
		s.Write(job("x", int64(i)), NoLease)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("takers served out of order: %v", order)
		}
	}
	if len(order) != 6 {
		t.Fatalf("served %d of 6", len(order))
	}
}

// TestShardedConcreteWaiterHomed checks a wildcard-free template
// parks on one shard only and is still woken by its matching write.
func TestShardedConcreteWaiterHomed(t *testing.T) {
	_, s := simSharded(4)
	w := &sub{tmpl: job("fft", 7), take: true, cb: func(tuple.Tuple, error) {}}
	w.class, w.key = classify(w.tmpl)
	if w.class != subValue {
		t.Fatalf("concrete template classified %v", w.class)
	}
	got := 0
	s.Take(job("fft", 7), sim.Forever, func(tp tuple.Tuple, ok bool) {
		if ok && tp.Fields[1].Int == 7 {
			got++
		}
	})
	parked := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		for n := sh.allHead; n != nil; n = n.aNext {
			parked++
		}
		sh.mu.Unlock()
	}
	if parked != 1 {
		t.Fatalf("concrete waiter parked on %d shards, want 1", parked)
	}
	s.Write(job("fft", 7), NoLease)
	if got != 1 {
		t.Fatalf("homed waiter not woken: %d", got)
	}
}

// TestShardedWildcardWaiterKindHomed checks the tentpole routing
// property: under default kind routing a typed template with wildcard
// fields parks on exactly one shard (its kind home) and is woken by a
// matching write, which must land on the same shard. Under legacy
// value routing the same template parks on every shard.
func TestShardedWildcardWaiterKindHomed(t *testing.T) {
	parkedNodes := func(s *Space) int {
		parked := 0
		for _, sh := range s.shards {
			sh.mu.Lock()
			for n := sh.allHead; n != nil; n = n.aNext {
				parked++
			}
			sh.mu.Unlock()
		}
		return parked
	}

	k := sim.NewKernel(1)
	s := New(SimRuntime{K: k}, WithShards(4))
	got := 0
	s.Take(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
		if ok {
			got++
		}
	})
	if p := parkedNodes(s); p != 1 {
		t.Fatalf("kind-routed wildcard waiter parked on %d shards, want 1", p)
	}
	s.Write(job("fft", 7), NoLease)
	if got != 1 {
		t.Fatalf("kind-homed waiter not woken: %d", got)
	}

	k2 := sim.NewKernel(1)
	legacy := New(SimRuntime{K: k2}, WithShards(4), WithValueRouting())
	legacy.Take(anyJob(), sim.Forever, func(tuple.Tuple, bool) {})
	if p := parkedNodes(legacy); p != 4 {
		t.Fatalf("value-routed wildcard waiter parked on %d shards, want 4", p)
	}

	// An untyped template stays on the all-shard path in both modes.
	k3 := sim.NewKernel(1)
	s3 := New(SimRuntime{K: k3}, WithShards(4))
	s3.Take(tuple.New("", tuple.AnyString("op"), tuple.AnyInt("n")), sim.Forever,
		func(tuple.Tuple, bool) {})
	if p := parkedNodes(s3); p != 4 {
		t.Fatalf("untyped waiter parked on %d shards, want 4", p)
	}
}

func TestShardedWriteSatisfiesAllReadersOneTaker(t *testing.T) {
	k, s := simSharded(4)
	reads, takes := 0, 0
	for i := 0; i < 3; i++ {
		s.Read(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
			if ok {
				reads++
			}
		})
	}
	for i := 0; i < 2; i++ {
		s.Take(anyJob(), sim.Forever, func(tp tuple.Tuple, ok bool) {
			if ok {
				takes++
			}
		})
	}
	s.Write(job("fft", 5), NoLease)
	k.Run()
	if reads != 3 || takes != 1 {
		t.Fatalf("reads=%d takes=%d, want 3/1", reads, takes)
	}
	if s.Size() != 0 {
		t.Fatal("entry stored despite consumption")
	}
	s.Write(job("fft", 6), NoLease)
	k.Run()
	if takes != 2 {
		t.Fatalf("second take not satisfied: %d", takes)
	}
}

func TestShardedScanMergesWriteOrder(t *testing.T) {
	_, s := simSharded(4)
	for i := 0; i < 40; i++ {
		s.Write(job("x", int64(i)), NoLease)
	}
	got := s.Scan(anyJob())
	if len(got) != 40 {
		t.Fatalf("scan returned %d", len(got))
	}
	for i, tp := range got {
		if tp.Fields[1].Int != int64(i) {
			t.Fatalf("scan out of write order at %d: %v", i, tp)
		}
	}
	if n := s.Count(anyJob()); n != 40 {
		t.Fatalf("count %d", n)
	}
}

func TestShardedCrashWakesAndReplayRestores(t *testing.T) {
	k, s := simSharded(4)
	var jb bytes.Buffer
	s.SetJournal(NewJournal(&jb))
	for i := 0; i < 10; i++ {
		s.Write(job("keep", int64(i)), NoLease)
	}
	s.TakeIfExists(job("keep", 3))

	var crashed []error
	s.TakeErr(job("nope", 1), sim.Forever, func(_ tuple.Tuple, err error) {
		crashed = append(crashed, err)
	})
	s.ReadErr(anyJob2("nope"), sim.Forever, func(_ tuple.Tuple, err error) {
		crashed = append(crashed, err)
	})
	s.Crash()
	if len(crashed) != 2 || crashed[0] != ErrCrashed || crashed[1] != ErrCrashed {
		t.Fatalf("crash wake errors: %v", crashed)
	}
	if s.Size() != 0 {
		t.Fatalf("size after crash: %d", s.Size())
	}
	k.Run()

	s.journal.Flush()
	n, err := s.Replay(bytes.NewReader(jb.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("restored %d, want 9", n)
	}
	// FIFO drain must reproduce the original write order minus the take.
	want := []int64{0, 1, 2, 4, 5, 6, 7, 8, 9}
	for _, w := range want {
		got, ok := s.TakeIfExists(anyJob())
		if !ok || got.Fields[1].Int != w {
			t.Fatalf("restored order broken: got %v want n=%d", got, w)
		}
	}
}

// anyJob2 is a typed wildcard template for a non-job type.
func anyJob2(typ string) tuple.Tuple {
	return tuple.New(typ, tuple.AnyString("op"), tuple.AnyInt("n"))
}

func TestShardedTxnAbortRestoresOrder(t *testing.T) {
	_, s := simSharded(4)
	for i := 0; i < 6; i++ {
		s.Write(job("x", int64(i)), NoLease)
	}
	tx := s.NewTxn(0)
	for i := 0; i < 3; i++ {
		if _, ok, err := tx.TakeIfExists(anyJob()); !ok || err != nil {
			t.Fatalf("txn take %d: ok=%v err=%v", i, ok, err)
		}
	}
	if s.Size() != 3 {
		t.Fatalf("held entries still visible: size=%d", s.Size())
	}
	tx.Abort()
	for i := 0; i < 6; i++ {
		got, ok := s.TakeIfExists(anyJob())
		if !ok || got.Fields[1].Int != int64(i) {
			t.Fatalf("order after abort broken at %d: %v", i, got)
		}
	}
}

func TestShardedNotify(t *testing.T) {
	_, s := simSharded(4)
	var concrete, wild int
	cancelW := s.Notify(anyJob(), func(tuple.Tuple) { wild++ })
	cancelC := s.Notify(job("fft", 1), func(tuple.Tuple) { concrete++ })
	for i := 0; i < 4; i++ {
		s.Write(job("fft", int64(i)), NoLease)
	}
	if wild != 4 || concrete != 1 {
		t.Fatalf("wild=%d concrete=%d, want 4/1", wild, concrete)
	}
	cancelW()
	cancelC()
	s.Write(job("fft", 1), NoLease)
	if wild != 4 || concrete != 1 {
		t.Fatalf("notify fired after cancel: wild=%d concrete=%d", wild, concrete)
	}
}

// TestShardedConcurrentHammer drives a sharded space from real
// goroutines under -race: concurrent writers, takers, readers,
// notifies and waiter timeouts on overlapping concrete and wildcard
// templates.
func TestShardedConcurrentHammer(t *testing.T) {
	s := New(NewRealRuntime(), WithShards(4))
	const (
		workers = 8
		perW    = 300
	)
	var wg sync.WaitGroup
	var taken, notified atomic.Uint64
	cancel := s.Notify(anyJob(), func(tuple.Tuple) { notified.Add(1) })
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					s.Write(job("op", int64(rng.Intn(16))), NoLease)
				case 2:
					if _, ok := s.TakeIfExists(job("op", int64(rng.Intn(16)))); ok {
						taken.Add(1)
					}
				case 3:
					if _, ok := s.TakeIfExists(anyJob()); ok {
						taken.Add(1)
					}
				}
			}
		}()
	}
	wg.Wait()
	cancel()
	// Conservation: everything written is either taken or still there.
	st := s.Stats()
	if int(st.Writes) != int(st.Takes)+s.Size() {
		t.Fatalf("conservation broken: writes=%d takes=%d size=%d", st.Writes, st.Takes, s.Size())
	}
	if got := int(taken.Load()); got != int(st.Takes) {
		t.Fatalf("observed takes %d vs stats %d", got, st.Takes)
	}
	if notified.Load() != st.Notifies {
		t.Fatalf("observed notifies %d vs stats %d", notified.Load(), st.Notifies)
	}
}

// propRef is the naive linear oracle for the interleaving property
// test: id-stamped entries with lease tracking, mirroring the space's
// observable semantics including expiry, cancellation and
// crash/replay.
type propEntry struct {
	id     uint64
	t      tuple.Tuple
	lease  sim.Duration
	expiry sim.Time // zero: permanent
}

type propRef struct {
	entries []propEntry
	nextID  uint64
}

func (r *propRef) write(t tuple.Tuple, lease sim.Duration, now sim.Time) uint64 {
	r.nextID++
	e := propEntry{id: r.nextID, t: t.Clone(), lease: lease}
	if lease > 0 {
		e.expiry = now.Add(lease)
	}
	r.entries = append(r.entries, e)
	return r.nextID
}

func (r *propRef) oldest(tmpl tuple.Tuple) int {
	for i := range r.entries {
		if tmpl.Matches(r.entries[i].t) {
			return i
		}
	}
	return -1
}

func (r *propRef) take(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if i := r.oldest(tmpl); i >= 0 {
		e := r.entries[i]
		r.entries = append(r.entries[:i], r.entries[i+1:]...)
		return e.t, true
	}
	return tuple.Tuple{}, false
}

func (r *propRef) expire(now sim.Time) {
	kept := r.entries[:0]
	for _, e := range r.entries {
		if e.expiry == 0 || e.expiry > now {
			kept = append(kept, e)
		}
	}
	r.entries = kept
}

func (r *propRef) cancel(id uint64) bool {
	for i := range r.entries {
		if r.entries[i].id == id {
			r.entries = append(r.entries[:i], r.entries[i+1:]...)
			return true
		}
	}
	return false
}

// rearm re-computes expiries as Replay does: original lease, from now.
func (r *propRef) rearm(now sim.Time) {
	for i := range r.entries {
		if r.entries[i].lease > 0 {
			r.entries[i].expiry = now.Add(r.entries[i].lease)
		}
	}
}

// TestShardedPropertyEquivalence is the observational-equivalence
// property test: for random interleavings of write (leased and
// permanent), take, read, count, lease cancel, time advance (expiry)
// and crash+replay, with wildcard and concrete templates, the indexed
// store at shards ∈ {1, 4} — under every routing mode (default kind
// routing, a one-field value prefix, and legacy full-value routing) —
// must agree with the naive linear reference at every step. A pair of
// notify subscriptions (typed wildcard and untyped) rides along: the
// event counts must equal the reference's count of matching writes,
// whichever shard each write homed to.
func TestShardedPropertyEquivalence(t *testing.T) {
	type routing struct {
		name string
		opts []Option
	}
	combos := []struct {
		shards int
		mode   routing
	}{
		{1, routing{name: "kind"}},
		{4, routing{name: "kind"}},
		{4, routing{name: "prefix1", opts: []Option{WithRoutePrefix(1)}}},
		{4, routing{name: "value", opts: []Option{WithValueRouting()}}},
	}
	prop := func(seed int64) bool {
		for _, combo := range combos {
			shards := combo.shards
			rng := rand.New(rand.NewSource(seed))
			k := sim.NewKernel(1)
			s := New(SimRuntime{K: k}, append([]Option{WithShards(shards)}, combo.mode.opts...)...)
			var jb writerBuffer
			s.SetJournal(NewJournal(&jb))
			ref := &propRef{}
			leases := map[uint64]*Lease{}

			// Notify equivalence: events fire on write (not replay or
			// abort), so the reference count is just matching writes.
			typedTmpl := tuple.New("a", tuple.AnyInt("x"), tuple.AnyString("s"))
			anyTmpl := tuple.New("", tuple.AnyInt("x"), tuple.AnyString("s"))
			var gotTyped, gotAny, wantTyped, wantAny int
			cancelTyped := s.Notify(typedTmpl, func(tuple.Tuple) { gotTyped++ })
			cancelAny := s.Notify(anyTmpl, func(tuple.Tuple) { gotAny++ })

			for step := 0; step < 250; step++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // write, sometimes leased
					tp := randomTuple(rng)
					var d sim.Duration
					if rng.Intn(4) == 0 {
						d = sim.Duration(1+rng.Intn(50)) * sim.Second
					}
					l, err := s.Write(tp, d)
					if err != nil {
						t.Errorf("seed %d step %d shards %d: write: %v", seed, step, shards, err)
						return false
					}
					id := ref.write(tp, d, k.Now())
					leases[id] = l
					if typedTmpl.Matches(tp) {
						wantTyped++
					}
					if anyTmpl.Matches(tp) {
						wantAny++
					}
				case 4, 5: // take
					tmpl := randomTemplate(rng)
					got, ok := s.TakeIfExists(tmpl)
					want, wok := ref.take(tmpl)
					if ok != wok || (ok && !got.Equal(want)) {
						t.Errorf("seed %d step %d shards %d: take %v got %v,%v want %v,%v",
							seed, step, shards, tmpl, got, ok, want, wok)
						return false
					}
				case 6: // read
					tmpl := randomTemplate(rng)
					got, ok := s.ReadIfExists(tmpl)
					wi := ref.oldest(tmpl)
					if ok != (wi >= 0) || (ok && !got.Equal(ref.entries[wi].t)) {
						t.Errorf("seed %d step %d shards %d: read mismatch (%v)", seed, step, shards, tmpl)
						return false
					}
				case 7: // time advances; leases lapse
					d := sim.Duration(1+rng.Intn(20)) * sim.Second
					k.RunFor(d)
					ref.expire(k.Now())
				case 8: // cancel a random lease handle
					if len(leases) == 0 {
						continue
					}
					ids := make([]uint64, 0, len(leases))
					for id := range leases {
						ids = append(ids, id)
					}
					id := ids[rng.Intn(len(ids))]
					got := leases[id].Cancel()
					want := ref.cancel(id)
					delete(leases, id)
					if got != want {
						t.Errorf("seed %d step %d shards %d: cancel(%d) %v want %v",
							seed, step, shards, id, got, want)
						return false
					}
				case 9: // crash, then replay the journal so far
					s.Crash()
					leases = map[uint64]*Lease{} // pre-crash handles dropped
					if s.Size() != 0 {
						t.Errorf("seed %d step %d shards %d: size %d after crash", seed, step, shards, s.Size())
						return false
					}
					s.journal.Flush()
					if _, err := s.Replay(bytes.NewReader(jb.data)); err != nil {
						t.Errorf("seed %d step %d shards %d: replay: %v", seed, step, shards, err)
						return false
					}
					ref.rearm(k.Now())
					// Crash drops notify registrations (and replay fires no
					// events); re-register, as a restarted client would.
					cancelTyped = s.Notify(typedTmpl, func(tuple.Tuple) { gotTyped++ })
					cancelAny = s.Notify(anyTmpl, func(tuple.Tuple) { gotAny++ })
				}
				// Invariants checked every step.
				if s.Size() != len(ref.entries) {
					t.Errorf("seed %d step %d shards %d: size %d want %d",
						seed, step, shards, s.Size(), len(ref.entries))
					return false
				}
			}
			cancelTyped()
			cancelAny()
			if gotTyped != wantTyped || gotAny != wantAny {
				t.Errorf("seed %d shards %d mode %s: notify counts typed %d/%d any %d/%d",
					seed, shards, combo.mode.name, gotTyped, wantTyped, gotAny, wantAny)
				return false
			}
			// Final drain comparison across a wildcard-of-everything
			// template set: every remaining entry comes out in id order.
			for _, typ := range []string{"a", "b", "c"} {
				tmpl := tuple.New(typ, tuple.AnyInt("x"), tuple.AnyString("s"))
				for {
					got, ok := s.TakeIfExists(tmpl)
					want, wok := ref.take(tmpl)
					if ok != wok || (ok && !got.Equal(want)) {
						t.Errorf("seed %d shards %d: drain(%s) diverged", seed, shards, typ)
						return false
					}
					if !ok {
						break
					}
				}
			}
			if s.Size() != 0 || len(ref.entries) != 0 {
				t.Errorf("seed %d shards %d: drain incomplete: %d vs %d", seed, shards, s.Size(), len(ref.entries))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(44))}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayShuffledIDsBudget is the O(n²)-replay regression guard:
// 10k journal records whose ids arrive in shuffled order must replay
// via the index in near-linear time and bounded allocations. Absolute
// wall-clock budgets flake across CI boxes, so the time budget is a
// ratio: shuffled-id replay may cost at most a small multiple of
// sequential-id replay of the same records. The fixed restore sorts
// ids first and appends (ratio ≈ 1); the old journal-order restore
// walked half the store per insert, putting the ratio in the
// hundreds.
func TestReplayShuffledIDsBudget(t *testing.T) {
	const n = 10000
	journalFor := func(ids []int) *bytes.Buffer {
		var jb bytes.Buffer
		j := NewJournal(&jb)
		for _, i := range ids {
			j.logWrite(uint64(i+1), job("x", int64(i)), 0)
		}
		j.Flush()
		return &jb
	}
	seq := make([]int, n)
	for i := range seq {
		seq[i] = i
	}
	shuffled := rand.New(rand.NewSource(7)).Perm(n)

	replay := func(jb *bytes.Buffer) time.Duration {
		_, s := simSpace()
		start := time.Now()
		got, err := s.Replay(bytes.NewReader(jb.Bytes()))
		elapsed := time.Since(start)
		if err != nil || got != n {
			t.Fatalf("replay: n=%d err=%v", got, err)
		}
		// Restored in id order regardless of journal order.
		first, ok := s.TakeIfExists(anyJob())
		if !ok || first.Fields[1].Int != 0 {
			t.Fatalf("first restored entry %v", first)
		}
		return elapsed
	}
	replay(journalFor(seq)) // warm caches before timing
	tSeq := replay(journalFor(seq))
	tShuf := replay(journalFor(shuffled))
	if tShuf > 20*tSeq && tShuf > 100*time.Millisecond {
		t.Fatalf("shuffled-id replay %v vs sequential %v: insertion degraded", tShuf, tSeq)
	}

	// Alloc budget: decode + entry + index bookkeeping per record,
	// independent of journal order.
	jb := journalFor(shuffled)
	_, s := simSpace()
	allocs := testing.AllocsPerRun(1, func() {
		s2 := New(s.rt)
		if got, err := s2.Replay(bytes.NewReader(jb.Bytes())); err != nil || got != n {
			t.Fatalf("replay: n=%d err=%v", got, err)
		}
	})
	if perEntry := allocs / n; perEntry > 40 {
		t.Fatalf("replay allocs per entry = %.1f, budget 40", perEntry)
	}
}
