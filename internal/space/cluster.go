package space

import (
	"sort"

	"tpspace/internal/tuple"
)

// Cluster-plane support: the replication layer (internal/cluster)
// coordinates takes across nodes by entry identity, so it needs the
// probe/remove primitives below in addition to the template-based
// public API. They are deliberately thin: all matching and unlinking
// reuses the indexed paths, so journaling (logR on unlink), lease
// cancellation and statistics behave exactly as for local operations.

// IDTuple pairs an entry id with a copy of its tuple.
type IDTuple struct {
	ID uint64
	T  tuple.Tuple
}

// OldestMatch returns the id and a copy of the oldest entry matching
// the template without removing it, or ok=false. Unlike ReadIfExists
// it exposes the entry id, letting a coordinator name the exact entry
// in a cross-node claim.
func (s *Space) OldestMatch(tmpl tuple.Tuple) (uint64, tuple.Tuple, bool) {
	return s.OldestMatchExcept(tmpl, nil)
}

// OldestMatchExcept is OldestMatch skipping entries whose id is in
// skip — the coordinator's re-probe path after a claim came back
// "gone" (the named entry was consumed elsewhere first).
func (s *Space) OldestMatchExcept(tmpl tuple.Tuple, skip map[uint64]bool) (uint64, tuple.Tuple, bool) {
	class, key, home := s.classifyRoute(tmpl)
	if home != nil {
		sh := home
		sh.mu.Lock()
		e := sh.oldestExcept(class, key, tmpl, skip)
		if e == nil {
			sh.mu.Unlock()
			return 0, tuple.Tuple{}, false
		}
		id, out := e.id, e.t.Clone()
		sh.mu.Unlock()
		return id, out, true
	}
	s.lockAll()
	var best *entry
	for _, sh := range s.shards {
		if c := sh.oldestExcept(class, key, tmpl, skip); c != nil && (best == nil || c.id < best.id) {
			best = c
		}
	}
	if best == nil {
		s.unlockAll()
		return 0, tuple.Tuple{}, false
	}
	id, out := best.id, best.t.Clone()
	s.unlockAll()
	return id, out, true
}

// oldestExcept is oldest with a skip set; the caller holds the shard
// lock. Kept separate from oldest so the take fast path stays
// untouched.
func (sh *shard) oldestExcept(class subClass, key uint64, tmpl tuple.Tuple, skip map[uint64]bool) *entry {
	if len(skip) == 0 {
		return sh.oldest(class, key, tmpl)
	}
	switch class {
	case subValue:
		if b := sh.values[key]; b != nil {
			for e := b.head; e != nil; e = e.vNext {
				if !skip[e.id] && tmpl.Matches(e.t) {
					return e
				}
			}
		}
	case subKind:
		if b := sh.kinds[key]; b != nil {
			for e := b.head; e != nil; e = e.kNext {
				if !skip[e.id] && tmpl.Matches(e.t) {
					return e
				}
			}
		}
	case subShape:
		var best *entry
		for b := sh.shapes[key]; b != nil; b = b.nextShape {
			for e := b.head; e != nil; e = e.kNext {
				if !skip[e.id] && tmpl.Matches(e.t) {
					if best == nil || e.id < best.id {
						best = e
					}
					break
				}
			}
		}
		return best
	}
	return nil
}

// TakeByID removes the entry with the given id and returns its tuple.
// The removal is journaled (via unlink) and counted as a take, and any
// pending lease expiry timer is cancelled, so a later Replay will not
// resurrect the entry.
func (s *Space) TakeByID(id uint64) (tuple.Tuple, bool) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if e := sh.removeByID(id); e != nil {
			sh.stats.Takes++
			sh.mu.Unlock()
			return e.t, true
		}
		sh.mu.Unlock()
	}
	return tuple.Tuple{}, false
}

// ReadByID returns a copy of the entry with the given id without
// removing it.
func (s *Space) ReadByID(id uint64) (tuple.Tuple, bool) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if e := sh.byID[id]; e != nil {
			out := e.t.Clone()
			sh.mu.Unlock()
			return out, true
		}
		sh.mu.Unlock()
	}
	return tuple.Tuple{}, false
}

// DumpEntries returns every stored entry as (id, tuple copy) in id
// (write) order — the donor side of a cluster snapshot transfer.
func (s *Space) DumpEntries() []IDTuple {
	var out []IDTuple
	s.lockAll()
	for _, sh := range s.shards {
		for e := sh.head; e != nil; e = e.next {
			out = append(out, IDTuple{ID: e.id, T: e.t.Clone()})
		}
	}
	s.unlockAll()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
