package space

import (
	"bytes"
	"testing"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

func TestOldestMatchAndExcept(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := New(NewRealRuntime(), WithShards(shards))
		var ids []uint64
		for i := 0; i < 3; i++ {
			l, err := s.Write(tuple.New("job", tuple.Int("n", int64(i))), NoLease)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, l.id)
		}

		tmpl := tuple.New("job", tuple.AnyInt("n"))
		id, tt, ok := s.OldestMatch(tmpl)
		if !ok || id != ids[0] {
			t.Fatalf("shards=%d OldestMatch id=%d ok=%v, want %d", shards, id, ok, ids[0])
		}
		if tt.Fields[0].Int != 0 {
			t.Fatalf("shards=%d OldestMatch tuple=%v", shards, tt)
		}
		// Probe must not remove.
		if s.Size() != 3 {
			t.Fatalf("shards=%d OldestMatch consumed: size=%d", shards, s.Size())
		}

		// Skip set: excluding the two oldest exposes the third.
		skip := map[uint64]bool{ids[0]: true, ids[1]: true}
		id, _, ok = s.OldestMatchExcept(tmpl, skip)
		if !ok || id != ids[2] {
			t.Fatalf("shards=%d OldestMatchExcept id=%d ok=%v, want %d", shards, id, ok, ids[2])
		}
		skip[ids[2]] = true
		if _, _, ok = s.OldestMatchExcept(tmpl, skip); ok {
			t.Fatalf("shards=%d OldestMatchExcept matched with all ids skipped", shards)
		}

		// No match at all.
		if _, _, ok = s.OldestMatch(tuple.New("none")); ok {
			t.Fatalf("shards=%d OldestMatch matched missing template", shards)
		}
	}
}

func TestTakeByIDJournalsRemoval(t *testing.T) {
	k := sim.NewKernel(7)
	s := New(SimRuntime{K: k}, WithShards(4))
	var buf bytes.Buffer
	j := NewJournal(&buf)
	s.SetJournal(j)

	l1, _ := s.Write(tuple.New("a", tuple.Int("n", 1)), NoLease)
	l2, _ := s.Write(tuple.New("a", tuple.Int("n", 2)), 10*sim.Second)

	got, ok := s.TakeByID(l1.id)
	if !ok {
		t.Fatal("TakeByID missed a present entry")
	}
	if got.Fields[0].Int != 1 {
		t.Fatalf("TakeByID returned %v", got)
	}
	if _, ok := s.TakeByID(l1.id); ok {
		t.Fatal("TakeByID took the same id twice")
	}
	// Taking a leased entry must cancel its expiry timer.
	if _, ok := s.TakeByID(l2.id); !ok {
		t.Fatal("TakeByID missed leased entry")
	}
	if n := k.Pending(); n != 0 {
		t.Fatalf("expiry timer still pending after TakeByID: %d events", n)
	}

	if st := s.Stats(); st.Takes != 2 {
		t.Fatalf("Takes = %d, want 2", st.Takes)
	}

	// The journal must reflect both removals: a replay restores nothing.
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	s2 := New(SimRuntime{K: k}, WithShards(4))
	if _, err := s2.Replay(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Size() != 0 {
		t.Fatalf("replay resurrected %d entries consumed via TakeByID", s2.Size())
	}
}

func TestReadByIDAndDumpEntries(t *testing.T) {
	s := New(NewRealRuntime(), WithShards(4))
	var ids []uint64
	for i := 0; i < 5; i++ {
		l, _ := s.Write(tuple.New("e", tuple.Int("n", int64(i))), NoLease)
		ids = append(ids, l.id)
	}
	s.TakeByID(ids[2])

	if _, ok := s.ReadByID(ids[2]); ok {
		t.Fatal("ReadByID found a taken entry")
	}
	tt, ok := s.ReadByID(ids[3])
	if !ok {
		t.Fatal("ReadByID missed a present entry")
	}
	if tt.Fields[0].Int != 3 {
		t.Fatalf("ReadByID returned %v", tt)
	}

	dump := s.DumpEntries()
	if len(dump) != 4 {
		t.Fatalf("DumpEntries returned %d records, want 4", len(dump))
	}
	for i := 1; i < len(dump); i++ {
		if dump[i-1].ID >= dump[i].ID {
			t.Fatalf("DumpEntries not id-ordered: %v", dump)
		}
	}
	// Dump returns copies: mutating them must not corrupt the space.
	want := dump[0].T.Clone()
	dump[0].T.Fields[0].Int = 99
	if got, _ := s.ReadByID(dump[0].ID); !got.Equal(want) {
		t.Fatalf("DumpEntries aliasing: %v != %v", got, want)
	}
}
