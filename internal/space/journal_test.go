package space

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

func TestJournalReplayRestoresLiveEntries(t *testing.T) {
	var buf bytes.Buffer
	_, s := simSpace()
	s.SetJournal(NewJournal(&buf))
	s.Write(job("a", 1), NoLease)
	s.Write(job("b", 2), NoLease)
	s.Write(job("c", 3), NoLease)
	if _, ok := s.TakeIfExists(anyJob()); !ok { // consumes "a"
		t.Fatal("take failed")
	}
	if err := s.journal.Flush(); err != nil {
		t.Fatal(err)
	}

	// A fresh space rebuilt from the journal holds b and c, in order.
	_, s2 := simSpace()
	n, err := s2.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || s2.Size() != 2 {
		t.Fatalf("restored %d entries, size %d", n, s2.Size())
	}
	got, ok := s2.TakeIfExists(anyJob())
	if !ok || got.Fields[0].Str != "b" {
		t.Fatalf("order lost: %v", got)
	}
	got, ok = s2.TakeIfExists(anyJob())
	if !ok || got.Fields[0].Str != "c" {
		t.Fatalf("order lost: %v", got)
	}
}

func TestJournalRecordsExpiryAndCancel(t *testing.T) {
	var buf bytes.Buffer
	k, s := simSpace()
	s.SetJournal(NewJournal(&buf))
	s.Write(job("expiring", 1), 5*sim.Second)
	l, _ := s.Write(job("cancelled", 2), NoLease)
	s.Write(job("survivor", 3), NoLease)
	k.RunUntil(sim.Time(10 * sim.Second)) // the lease lapses
	l.Cancel()
	s.journal.Flush()

	_, s2 := simSpace()
	n, err := s2.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d, want 1", n)
	}
	got, ok := s2.ReadIfExists(anyJob())
	if !ok || got.Fields[0].Str != "survivor" {
		t.Fatalf("wrong survivor: %v", got)
	}
}

func TestJournalLeaseRearmedOnReplay(t *testing.T) {
	var buf bytes.Buffer
	_, s := simSpace()
	s.SetJournal(NewJournal(&buf))
	s.Write(job("leased", 1), 30*sim.Second)
	s.journal.Flush()

	k2 := sim.NewKernel(2)
	s2 := New(SimRuntime{K: k2})
	if _, err := s2.Replay(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if s2.Size() != 1 {
		t.Fatal("entry not restored")
	}
	k2.RunUntil(sim.Time(31 * sim.Second))
	if s2.Size() != 0 {
		t.Fatal("restored lease did not re-arm")
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	var buf bytes.Buffer
	_, s := simSpace()
	s.SetJournal(NewJournal(&buf))
	s.Write(job("whole", 1), NoLease)
	s.Write(job("torn", 2), NoLease)
	s.journal.Flush()

	// Chop the stream mid-record: the prefix must still replay.
	data := buf.Bytes()
	_, s2 := simSpace()
	n, err := s2.Replay(bytes.NewReader(data[:len(data)-5]))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d from torn journal, want 1", n)
	}
}

func TestJournalCorruptOpcode(t *testing.T) {
	_, s := simSpace()
	if _, err := s.Replay(bytes.NewReader([]byte{0x7F, 0, 0})); err == nil {
		t.Fatal("corrupt opcode accepted")
	}
}

func TestJournalFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "space.journal")

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, s := simSpace()
	s.SetJournal(j)
	s.Write(job("persisted", 42), NoLease)
	s.Write(job("taken", 43), NoLease)
	s.TakeIfExists(tuple.New("job", tuple.String("op", "taken"), tuple.AnyInt("n")))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": rebuild from the file.
	_, s2 := simSpace()
	n, err := s2.ReplayFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s2.Size() != 1 {
		t.Fatalf("restored %d entries", n)
	}
	got, _ := s2.ReadIfExists(anyJob())
	if got.Fields[1].Int != 42 {
		t.Fatalf("restored %v", got)
	}

	// Appending after replay continues the history.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetJournal(j2)
	s2.Write(job("later", 44), NoLease)
	j2.Close()
	_, s3 := simSpace()
	if n, _ := s3.ReplayFile(path); n != 2 {
		t.Fatalf("after append, restored %d, want 2", n)
	}
}

func TestReplayFileMissingIsFirstBoot(t *testing.T) {
	_, s := simSpace()
	n, err := s.ReplayFile(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil || n != 0 {
		t.Fatalf("missing journal: n=%d err=%v", n, err)
	}
}

func TestJournalTxnInteraction(t *testing.T) {
	var buf bytes.Buffer
	_, s := simSpace()
	s.SetJournal(NewJournal(&buf))
	s.Write(job("kept", 1), NoLease)
	s.Write(job("gone", 2), NoLease)

	// A committed take-under-txn removes for good; an aborted one
	// restores.
	tx := s.NewTxn(0)
	tx.TakeIfExists(tuple.New("job", tuple.String("op", "gone"), tuple.AnyInt("n")))
	tx.Commit()
	tx2 := s.NewTxn(0)
	tx2.TakeIfExists(tuple.New("job", tuple.String("op", "kept"), tuple.AnyInt("n")))
	tx2.Abort()
	s.journal.Flush()

	_, s2 := simSpace()
	n, err := s2.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("restored %d, want 1", n)
	}
	got, _ := s2.ReadIfExists(anyJob())
	if got.Fields[0].Str != "kept" {
		t.Fatalf("restored %v", got)
	}
}

func TestJournalSurvivesBinaryPayload(t *testing.T) {
	var buf bytes.Buffer
	_, s := simSpace()
	s.SetJournal(NewJournal(&buf))
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = byte(i)
	}
	s.Write(tuple.New("blob",
		tuple.Bytes("data", payload),
		tuple.Bool("flag", true),
		tuple.Float("f", 3.14),
	), NoLease)
	s.journal.Flush()
	_, s2 := simSpace()
	if _, err := s2.Replay(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, ok := s2.ReadIfExists(tuple.New("blob",
		tuple.AnyBytes("data"), tuple.AnyBool("flag"), tuple.AnyFloat("f")))
	if !ok || len(got.Fields[0].Bytes) != 300 || got.Fields[0].Bytes[299] != byte(299%256) {
		t.Fatalf("blob mangled: %v %v", got, ok)
	}
}

func TestJournalErrRecordsFailure(t *testing.T) {
	j := NewJournal(failingWriter{})
	_, s := simSpace()
	s.SetJournal(j)
	s.Write(job("x", 1), NoLease)
	j.Flush()
	if j.Err() == nil {
		t.Fatal("write failure not recorded")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }

func TestReplayCountExcludesConsumedEntries(t *testing.T) {
	// Replay returns the live entries restored to the store; a record
	// handed straight to a parked waiter is delivered but not counted.
	var buf bytes.Buffer
	_, s := simSpace()
	j := NewJournal(&buf)
	s.SetJournal(j)
	s.Write(job("served", 1), NoLease)
	s.Write(job("kept", 2), NoLease)
	j.Flush()
	s.Crash()

	calls := 0
	s.TakeErr(anyJob(), sim.Forever, func(tuple.Tuple, error) { calls++ })
	n, err := s.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("parked take fired %d times, want 1", calls)
	}
	if n != 1 || s.Size() != 1 {
		t.Fatalf("restored = %d, size = %d; the consumed record must not count", n, s.Size())
	}
	// The stat, by contrast, counts every surviving record replayed.
	if got := s.Stats().Restored; got != 2 {
		t.Fatalf("Stats.Restored = %d, want 2", got)
	}
}
