package space

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
	"tpspace/internal/xmlcodec"
)

// The paper describes the tuplespace as "asynchronous (and anonymous)
// associatively addressed messaging, where the messages are kept in a
// persistent message store". This file provides that persistence: a
// write-ahead journal of state-changing operations (writes, takes,
// expiries, cancellations) that can rebuild the store after a
// restart.
//
// Record format: 1-byte opcode, then for writes a lease in
// nanoseconds (int64, big-endian), an entry id (uint64), and the
// tuple in the compact binary encoding, length-prefixed; for removals
// just the entry id. The journal is an append-only stream, safe to
// replay prefix-wise after a crash (a torn final record is ignored).

// Journal opcodes.
const (
	journalWrite  = 0x01
	journalRemove = 0x02
)

// ErrJournalCorrupt reports a malformed (non-torn) journal record.
var ErrJournalCorrupt = errors.New("space: journal corrupt")

// Journal persists space mutations to a writer.
type Journal struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File // non-nil when backed by a file (for Sync)
	err error
}

// NewJournal wraps a writer (commonly an os.File opened with
// O_APPEND).
func NewJournal(w io.Writer) *Journal {
	j := &Journal{w: bufio.NewWriter(w)}
	if f, ok := w.(*os.File); ok {
		j.f = f
	}
	return j
}

// OpenJournal opens (creating if needed) a journal file for append.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return NewJournal(f), nil
}

// Err returns the first write failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Flush drains buffered records (and fsyncs when file-backed).
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if err := j.w.Flush(); err != nil {
		j.err = err
		return err
	}
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			j.err = err
			return err
		}
	}
	return nil
}

// Close flushes and closes the underlying file, when file-backed.
func (j *Journal) Close() error {
	if err := j.Flush(); err != nil {
		return err
	}
	if j.f != nil {
		return j.f.Close()
	}
	return nil
}

func (j *Journal) logWrite(id uint64, t tuple.Tuple, lease sim.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	body := xmlcodec.EncodeTupleBinary(t)
	var hdr [1 + 8 + 8 + 4]byte
	hdr[0] = journalWrite
	binary.BigEndian.PutUint64(hdr[1:], uint64(lease))
	binary.BigEndian.PutUint64(hdr[9:], id)
	binary.BigEndian.PutUint32(hdr[17:], uint32(len(body)))
	if _, err := j.w.Write(hdr[:]); err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(body); err != nil {
		j.err = err
	}
}

// logRemoveBatch appends one removal record per id under a single
// lock acquisition — the expiry sweep's amortization of journal cost.
// The stream bytes are identical to len(ids) logRemove calls, so
// Replay needs no awareness of batching.
func (j *Journal) logRemoveBatch(ids []uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	var rec [9]byte
	rec[0] = journalRemove
	for _, id := range ids {
		binary.BigEndian.PutUint64(rec[1:], id)
		if _, err := j.w.Write(rec[:]); err != nil {
			j.err = err
			return
		}
	}
}

func (j *Journal) logRemove(id uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	var rec [9]byte
	rec[0] = journalRemove
	binary.BigEndian.PutUint64(rec[1:], id)
	if _, err := j.w.Write(rec[:]); err != nil {
		j.err = err
	}
}

// SetJournal attaches a journal: every subsequent write, take, lease
// expiry and cancellation is recorded. Attach before the first write;
// existing entries are not back-filled (replay first, then attach).
func (s *Space) SetJournal(j *Journal) {
	s.lockAll()
	s.journal = j
	s.unlockAll()
}

// Replay rebuilds a space's store from a journal stream: surviving
// writes are re-inserted in their original total order, under their
// original entry ids, with their original leases re-armed from now.
// It returns the number of live entries restored to the store; a
// record handed straight to a parked waiter is delivered (and its
// consumption journalled) but not counted, since it never enters the
// live set. Stats.Restored, by contrast, counts every surviving
// record replayed, consumed or stored.
//
// Preserving ids makes replay idempotent across repeated crashes: a
// take (or expiry) of a restored entry logs a removal under the id its
// write record already carries, so a second replay of the same journal
// does not resurrect it. Parked waiters are honoured — an operation
// re-issued before the restart completes is satisfied by the restored
// entry (and the consumption journalled); otherwise replay must run
// before the space is used.
func (s *Space) Replay(r io.Reader) (int, error) {
	type pending struct {
		t     tuple.Tuple
		lease sim.Duration
	}
	live := map[uint64]pending{}

	br := bufio.NewReader(r)
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		switch op {
		case journalWrite:
			var hdr [20]byte
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				if err == io.ErrUnexpectedEOF || err == io.EOF {
					goto done // torn tail record: ignore
				}
				return 0, err
			}
			lease := sim.Duration(binary.BigEndian.Uint64(hdr[0:]))
			id := binary.BigEndian.Uint64(hdr[8:])
			n := binary.BigEndian.Uint32(hdr[16:])
			body := make([]byte, n)
			if _, err := io.ReadFull(br, body); err != nil {
				if err == io.ErrUnexpectedEOF || err == io.EOF {
					goto done
				}
				return 0, err
			}
			t, err := xmlcodec.DecodeTupleBinary(body)
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrJournalCorrupt, err)
			}
			// An id may recur (a txn abort re-logs the restored
			// entry); the latest record wins.
			live[id] = pending{t: t, lease: lease}
		case journalRemove:
			var rec [8]byte
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				if err == io.ErrUnexpectedEOF || err == io.EOF {
					goto done
				}
				return 0, err
			}
			delete(live, binary.BigEndian.Uint64(rec[:]))
		default:
			return 0, fmt.Errorf("%w: opcode %#x", ErrJournalCorrupt, op)
		}
	}
done:
	// Restore the live set in ascending id order: the store's indexed
	// views are append-at-tail id-ordered lists, so a sorted restore
	// rebuilds every view with O(1) links per entry (a journal-order
	// restore of shuffled ids would degrade each insert to a list
	// walk). Ascending id order is also exactly the live total order —
	// the paper's "timestamp determines a total order relation" — so
	// FIFO takes observe the same sequence as before the crash.
	ids := make([]uint64, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	restored := 0
	for _, id := range ids {
		p := live[id]
		for {
			cur := s.seq.Load()
			if cur >= id || s.seq.CompareAndSwap(cur, id) {
				break
			}
		}
		vh, _ := p.t.ValueSig()
		e := &entry{id: id, t: p.t, vh: vh, kk: p.t.KindSig(), sk: p.t.ShapeSig()}
		// Same routing rule as Write: a restored entry must land on the
		// shard the templates that can match it route to.
		sh := s.shardFor(s.routeOf(p.t, vh, e.kk))
		sh.mu.Lock()
		sh.stats.Restored++
		l, fire := sh.store(e, p.lease, false)
		if l.sp != nil { // attached lease: stored, not consumed
			restored++
		}
		sh.mu.Unlock()
		for _, f := range fire {
			f()
		}
	}
	return restored, nil
}

// ReplayFile is Replay over a journal file; a missing file restores
// nothing and is not an error (first boot).
func (s *Space) ReplayFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	return s.Replay(f)
}
