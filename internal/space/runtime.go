// Package space implements the JavaSpaces-like tuplespace middleware
// of Section 4.1 of the paper: a shared, associatively addressed
// store of entries with write / read / take primitives (blocking and
// non-blocking), entry leases ("the entry lifetime"), and the
// subscribe/notify paradigm.
//
// The same Space runs in two worlds: inside a discrete-event
// simulation (driven by a sim.Kernel through SimRuntime, as in the
// paper's NS-2 co-simulation) and as a real server on the wall clock
// (RealRuntime, as in the paper's Java SpaceServer prototype).
package space

import (
	"sync"
	"time"

	"tpspace/internal/sim"
)

// Runtime abstracts time and timers so a Space can run in simulated
// or real time.
type Runtime interface {
	// Now returns the current time.
	Now() sim.Time
	// After arranges for fn to run after d and returns a cancel
	// function. Cancel after firing is a no-op.
	After(d sim.Duration, fn func()) (cancel func())
}

// SimRuntime drives a Space from a simulation kernel. Not safe for
// use outside the kernel's event loop.
type SimRuntime struct {
	K *sim.Kernel
}

// Now implements Runtime.
func (r SimRuntime) Now() sim.Time { return r.K.Now() }

// After implements Runtime.
func (r SimRuntime) After(d sim.Duration, fn func()) func() {
	// The cancel closure may be invoked long after the timer fired
	// (the Runtime contract makes that a no-op), by which point the
	// kernel may have recycled the event's storage for an unrelated
	// scheduling — cancel through the seq-checked path.
	ev := r.K.ScheduleName("space.timer", d, fn)
	seq := ev.Seq()
	return func() { r.K.CancelSeq(ev, seq) }
}

// RealRuntime drives a Space from the operating system clock; it is
// what cmd/spaceserver uses.
type RealRuntime struct {
	clock *sim.WallClock
	mu    sync.Mutex
}

// NewRealRuntime returns a wall-clock runtime with its origin at the
// call.
func NewRealRuntime() *RealRuntime {
	return &RealRuntime{clock: sim.NewWallClock()}
}

// Now implements Runtime.
func (r *RealRuntime) Now() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock.Now()
}

// After implements Runtime.
func (r *RealRuntime) After(d sim.Duration, fn func()) func() {
	t := time.AfterFunc(d.Std(), fn)
	return func() { t.Stop() }
}
