// Package space implements the JavaSpaces-like tuplespace middleware
// of Section 4.1 of the paper: a shared, associatively addressed
// store of entries with write / read / take primitives (blocking and
// non-blocking), entry leases ("the entry lifetime"), and the
// subscribe/notify paradigm.
//
// The same Space runs in two worlds: inside a discrete-event
// simulation (driven by a sim.Kernel through SimRuntime, as in the
// paper's NS-2 co-simulation) and as a real server on the wall clock
// (RealRuntime, as in the paper's Java SpaceServer prototype).
package space

import (
	"time"

	"tpspace/internal/sim"
)

// Runtime abstracts time and timers so a Space can run in simulated
// or real time.
type Runtime interface {
	// Now returns the current time.
	Now() sim.Time
	// After arranges for fn to run after d and returns a cancel
	// function. Cancel after firing is a no-op.
	After(d sim.Duration, fn func()) (cancel func())
	// AfterBulk returns a single re-armable timer that runs fn each
	// time it fires. It is the bulk-expiry primitive: one such timer
	// per shard drives a timing wheel holding millions of deadlines,
	// where After would cost one runtime timer per deadline. The
	// returned Timer is initially unarmed.
	AfterBulk(fn func()) Timer
}

// Timer is a re-armable one-shot timer handle from Runtime.AfterBulk.
// Reset and Stop may be called repeatedly and in any order; a Reset
// supersedes any pending firing. On a real runtime fn may already be
// executing concurrently with Reset/Stop — callers must tolerate one
// stale firing (the lease sweep does: it re-reads its wheel under the
// shard lock and finds nothing due).
type Timer interface {
	// Reset arms (or re-arms) the timer to fire once after d.
	Reset(d sim.Duration)
	// Stop disarms the timer if it is armed.
	Stop()
}

// SimRuntime drives a Space from a simulation kernel. Not safe for
// use outside the kernel's event loop.
type SimRuntime struct {
	K *sim.Kernel
}

// Now implements Runtime.
func (r SimRuntime) Now() sim.Time { return r.K.Now() }

// After implements Runtime.
func (r SimRuntime) After(d sim.Duration, fn func()) func() {
	// The cancel closure may be invoked long after the timer fired
	// (the Runtime contract makes that a no-op), by which point the
	// kernel may have recycled the event's storage for an unrelated
	// scheduling — cancel through the seq-checked path.
	ev := r.K.ScheduleName("space.timer", d, fn)
	seq := ev.Seq()
	return func() { r.K.CancelSeq(ev, seq) }
}

// AfterBulk implements Runtime.
func (r SimRuntime) AfterBulk(fn func()) Timer {
	return &simTimer{k: r.K, fn: fn}
}

// simTimer is one re-armable kernel event; like SimRuntime itself it
// must only be touched from inside the kernel's event loop, so no
// locking is needed.
type simTimer struct {
	k   *sim.Kernel
	fn  func()
	ev  *sim.Event
	seq uint64
}

func (t *simTimer) Reset(d sim.Duration) {
	if t.ev != nil {
		t.k.CancelSeq(t.ev, t.seq)
	}
	t.ev = t.k.ScheduleName("space.sweep", d, t.fn)
	t.seq = t.ev.Seq()
}

func (t *simTimer) Stop() {
	if t.ev != nil {
		t.k.CancelSeq(t.ev, t.seq)
		t.ev = nil
	}
}

// RealRuntime drives a Space from the operating system clock; it is
// what cmd/spaceserver uses.
type RealRuntime struct {
	origin time.Time
}

// NewRealRuntime returns a wall-clock runtime with its origin at the
// call.
func NewRealRuntime() *RealRuntime {
	return &RealRuntime{origin: time.Now()}
}

// Now implements Runtime. It is lock-free: the origin is immutable
// after construction, so concurrent readers share it without
// coordination and the cost is one monotonic clock read — this is on
// the path of every write and every expiry sweep of a real server.
func (r *RealRuntime) Now() sim.Time {
	return sim.Time(time.Since(r.origin))
}

// After implements Runtime.
func (r *RealRuntime) After(d sim.Duration, fn func()) func() {
	t := time.AfterFunc(d.Std(), fn)
	return func() { t.Stop() }
}

// AfterBulk implements Runtime.
func (r *RealRuntime) AfterBulk(fn func()) Timer {
	t := time.AfterFunc(time.Duration(1<<62), fn)
	t.Stop()
	return realTimer{t}
}

// realTimer adapts time.Timer; Reset on an AfterFunc timer re-arms
// its function, which is exactly the Timer contract.
type realTimer struct{ t *time.Timer }

func (rt realTimer) Reset(d sim.Duration) { rt.t.Reset(d.Std()) }
func (rt realTimer) Stop()                { rt.t.Stop() }
