package space

import (
	"bytes"
	"errors"
	"testing"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

func TestCrashWakesWaitersWithTypedError(t *testing.T) {
	_, s := simSpace()
	var takeErr, readErr error
	takeCalls, readCalls := 0, 0
	s.TakeErr(anyJob(), sim.Forever, func(_ tuple.Tuple, err error) {
		takeCalls++
		takeErr = err
	})
	s.ReadErr(anyJob(), sim.Forever, func(_ tuple.Tuple, err error) {
		readCalls++
		readErr = err
	})
	notified := 0
	s.Notify(anyJob(), func(tuple.Tuple) { notified++ })

	s.Crash()

	if takeCalls != 1 || readCalls != 1 {
		t.Fatalf("waiters woken take=%d read=%d, want 1/1", takeCalls, readCalls)
	}
	if !errors.Is(takeErr, ErrCrashed) || !errors.Is(readErr, ErrCrashed) {
		t.Fatalf("errors = %v / %v, want ErrCrashed", takeErr, readErr)
	}
	if s.Stats().Crashes != 1 {
		t.Fatalf("crashes = %d", s.Stats().Crashes)
	}

	// The store is empty and subscriptions are gone.
	if s.Size() != 0 {
		t.Fatalf("size after crash = %d", s.Size())
	}
	s.Write(job("post", 1), NoLease)
	if notified != 0 {
		t.Fatal("crash did not drop notify registrations")
	}
}

func TestCrashReplayPreservesAckedWrites(t *testing.T) {
	var buf bytes.Buffer
	k, s := simSpace()
	j := NewJournal(&buf)
	s.SetJournal(j)

	s.Write(job("a", 1), NoLease)
	s.Write(job("b", 2), NoLease)
	if _, ok := s.TakeIfExists(anyJob()); !ok { // consumes "a"
		t.Fatal("take failed")
	}
	j.Flush()
	s.Crash()
	if s.Size() != 0 {
		t.Fatal("crash left entries behind")
	}

	// Restart: replay into the SAME space (the journal survives the
	// crash; memory does not).
	n, err := s.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Size() != 1 {
		t.Fatalf("restored %d entries, size %d, want 1", n, s.Size())
	}
	got, ok := s.ReadIfExists(anyJob())
	if !ok || got.Fields[0].Str != "b" {
		t.Fatalf("acked write lost across crash: %v", got)
	}
	if s.Stats().Restored != 1 {
		t.Fatalf("Restored stat = %d", s.Stats().Restored)
	}
	_ = k
}

func TestReplayPreservesIdsAcrossRepeatedCrashes(t *testing.T) {
	// The regression this guards: if replay assigned fresh ids, a take
	// after the first restart would journal a removal under an id no
	// write record carries, and a second replay would resurrect the
	// taken entry as a ghost.
	var buf bytes.Buffer
	_, s := simSpace()
	j := NewJournal(&buf)
	s.SetJournal(j)

	s.Write(job("x", 1), NoLease)
	s.Write(job("y", 2), NoLease)
	j.Flush()

	// Crash 1 + replay, then take "x" — the removal must be journalled
	// under the original id.
	s.Crash()
	if _, err := s.Replay(bytes.NewReader(append([]byte(nil), buf.Bytes()...))); err != nil {
		t.Fatal(err)
	}
	got, ok := s.TakeIfExists(tuple.New("job", tuple.String("op", "x"), tuple.AnyInt("n")))
	if !ok || got.Fields[0].Str != "x" {
		t.Fatalf("take after first replay: %v ok=%v", got, ok)
	}
	j.Flush()

	// Crash 2 + replay of the full journal: only "y" may come back.
	s.Crash()
	n, err := s.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || s.Size() != 1 {
		t.Fatalf("second replay restored %d entries (size %d), want 1 — taken entry resurrected?", n, s.Size())
	}
	got, ok = s.ReadIfExists(anyJob())
	if !ok || got.Fields[0].Str != "y" {
		t.Fatalf("wrong survivor after double crash: %v", got)
	}
}

func TestReplaySatisfiesParkedWaiter(t *testing.T) {
	// A take re-issued while the server was down parks on the empty
	// space; the restart's replay must satisfy it — and journal the
	// consumption so the entry stays taken on the next replay.
	var buf bytes.Buffer
	_, s := simSpace()
	j := NewJournal(&buf)
	s.SetJournal(j)
	s.Write(job("carry", 7), NoLease)
	j.Flush()
	s.Crash()

	var got tuple.Tuple
	var gotErr error
	calls := 0
	s.TakeErr(anyJob(), sim.Forever, func(t tuple.Tuple, err error) {
		calls++
		got, gotErr = t, err
	})

	if _, err := s.Replay(bytes.NewReader(append([]byte(nil), buf.Bytes()...))); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || gotErr != nil || got.Fields[0].Str != "carry" {
		t.Fatalf("parked take not satisfied by replay: calls=%d err=%v t=%v", calls, gotErr, got)
	}
	j.Flush()

	// The consumption was journalled: another crash+replay restores
	// nothing.
	s.Crash()
	n, err := s.Replay(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || s.Size() != 0 {
		t.Fatalf("replay-time take not persisted: restored %d, size %d", n, s.Size())
	}
}

func TestCrashReplayWithTornTail(t *testing.T) {
	// The satellite case: the server crashes mid-append. Every complete
	// record must be recovered and the torn one ignored — at every
	// possible truncation point.
	var buf bytes.Buffer
	_, s := simSpace()
	j := NewJournal(&buf)
	s.SetJournal(j)
	s.Write(job("a", 1), NoLease)
	s.Write(job("b", 2), 30*sim.Second)
	if _, ok := s.TakeIfExists(tuple.New("job", tuple.String("op", "a"), tuple.AnyInt("n"))); !ok {
		t.Fatal("take failed")
	}
	s.Write(job("c", 3), NoLease)
	j.Flush()
	full := append([]byte(nil), buf.Bytes()...)

	// Boundaries of complete prefixes: record sizes are 21+len(body)
	// for writes, 9 for removals. Rather than recompute them, replay
	// every strict prefix: the restored count must never exceed the
	// full journal's and must never error.
	wantFull := 2 // b and c live at the end
	for cut := 0; cut < len(full); cut++ {
		_, s2 := simSpace()
		n, err := s2.Replay(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("prefix %d/%d: replay error %v (torn tail must be ignored)", cut, len(full), err)
		}
		if n > 3 {
			t.Fatalf("prefix %d: restored %d entries from a 3-write journal", cut, n)
		}
		if n != s2.Size() {
			t.Fatalf("prefix %d: restored %d but size %d", cut, n, s2.Size())
		}
	}
	_, s3 := simSpace()
	n, err := s3.Replay(bytes.NewReader(full))
	if err != nil || n != wantFull {
		t.Fatalf("full replay: n=%d err=%v, want %d", n, err, wantFull)
	}
}

func TestCrashDisarmsLeaseTimers(t *testing.T) {
	k, s := simSpace()
	s.Write(job("leased", 1), 5*sim.Second)
	s.Crash()
	s.Write(job("leased", 2), NoLease) // same type, permanent
	k.RunUntil(sim.Time(20 * sim.Second))
	// The pre-crash lease timer must not have fired against the store.
	if s.Stats().Expired != 0 {
		t.Fatalf("expired = %d after crash disarmed timers", s.Stats().Expired)
	}
	if s.Size() != 1 {
		t.Fatalf("size = %d", s.Size())
	}
}
