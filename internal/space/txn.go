package space

import (
	"errors"
	"sort"
	"sync"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

// ErrTxnDone is returned by operations on a committed or aborted
// transaction.
var ErrTxnDone = errors.New("space: transaction already completed")

// Txn is a JavaSpaces-style transaction: writes performed under it
// stay invisible to other clients until Commit, and entries taken
// under it are held aside and restored (in their original total-order
// position) on Abort. A transaction may carry its own lease, after
// which it aborts automatically — the standard defence against a
// client crashing mid-transaction.
//
// The transaction carries its own lock, taken before any shard lock
// (the space never locks a transaction), so transactional ops compose
// with the sharded store without serializing unrelated traffic.
type Txn struct {
	sp *Space

	mu   sync.Mutex
	done bool

	// pending writes, applied at commit.
	writes []txnWrite
	// held entries removed from the store, restored on abort.
	held []*entry

	cancelLease func()
	// Aborted reports whether the transaction ended by abort
	// (explicit or lease expiry).
	Aborted bool
}

type txnWrite struct {
	t     tuple.Tuple
	lease sim.Duration
}

// NewTxn opens a transaction. A positive lease arms auto-abort.
func (s *Space) NewTxn(lease sim.Duration) *Txn {
	tx := &Txn{sp: s}
	if lease > 0 {
		tx.cancelLease = s.rt.After(lease, func() { tx.Abort() })
	}
	return tx
}

// Write buffers a tuple to be stored when the transaction commits.
func (tx *Txn) Write(t tuple.Tuple, lease sim.Duration) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxnDone
	}
	if t.HasWildcards() {
		return ErrTemplateWrite
	}
	tx.writes = append(tx.writes, txnWrite{t: t.Clone(), lease: lease})
	return nil
}

// TakeIfExists removes the oldest matching entry from the space and
// holds it under the transaction: other clients cannot see it, and it
// returns to its place if the transaction aborts. Entries written
// under this same (uncommitted) transaction are also visible to it,
// searched after the store.
func (tx *Txn) TakeIfExists(tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tuple.Tuple{}, false, ErrTxnDone
	}
	if e := tx.sp.takeEntry(tmpl); e != nil {
		tx.held = append(tx.held, e)
		return e.t.Clone(), true, nil
	}
	// Our own uncommitted writes are visible to us.
	for i, w := range tx.writes {
		if tmpl.Matches(w.t) {
			tx.writes = append(tx.writes[:i], tx.writes[i+1:]...)
			return w.t, true, nil
		}
	}
	tx.sp.countMiss()
	return tuple.Tuple{}, false, nil
}

// ReadIfExists is TakeIfExists without removal.
func (tx *Txn) ReadIfExists(tmpl tuple.Tuple) (tuple.Tuple, bool, error) {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return tuple.Tuple{}, false, ErrTxnDone
	}
	if t, ok := tx.sp.readEntry(tmpl); ok {
		return t, true, nil
	}
	for _, w := range tx.writes {
		if tmpl.Matches(w.t) {
			return w.t.Clone(), true, nil
		}
	}
	tx.sp.countMiss()
	return tuple.Tuple{}, false, nil
}

// Commit applies the buffered writes (waking matching waiters and
// subscribers) and discards the held entries for good.
func (tx *Txn) Commit() error {
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		return ErrTxnDone
	}
	tx.finishLocked()
	writes := tx.writes
	tx.writes = nil
	tx.held = nil
	tx.mu.Unlock()

	for _, w := range writes {
		if _, err := tx.sp.Write(w.t, w.lease); err != nil {
			return err
		}
	}
	return nil
}

// Abort drops the buffered writes and restores the held entries to
// their original positions in the total order. A restored entry
// satisfies waiters that parked while it was held, exactly as a fresh
// write would (notify subscriptions are not re-fired — the tuple was
// already announced when first written).
func (tx *Txn) Abort() error {
	tx.mu.Lock()
	if tx.done {
		tx.mu.Unlock()
		return ErrTxnDone
	}
	tx.finishLocked()
	tx.Aborted = true
	tx.writes = nil
	held := tx.held
	tx.held = nil
	// Restore in ascending id order so each insertSorted walk is
	// short and the original total order is rebuilt exactly. Expiry
	// timers were cancelled at take; restored entries are permanent
	// from here on (their remaining lifetime is not tracked across
	// the hold, matching the coarse JavaSpaces semantics of
	// lease-vs-transaction interaction).
	sort.Slice(held, func(i, j int) bool { return held[i].id < held[j].id })
	var fire []func()
	for _, e := range held {
		// Same routing rule as Write: the restored entry must return to
		// the shard templates that can match it route to.
		sh := tx.sp.shardFor(tx.sp.routeOf(e.t, e.vh, e.kk))
		sh.mu.Lock()
		consumed, f := sh.probeSubs(e, false)
		if !consumed {
			sh.insertSorted(e)
			// Journalled as a fresh permanent write: after a replay the
			// restored entry appears at its restoration point.
			tx.sp.logW(e.id, e.t, 0)
		}
		// A parked taker consumed the restored entry: nothing is
		// stored and nothing journalled — the removal logged when the
		// transaction took it already keeps the entry gone on replay.
		sh.mu.Unlock()
		fire = append(fire, f...)
	}
	tx.mu.Unlock()
	// Callbacks run without tx.mu or shard locks held.
	for _, f := range fire {
		f()
	}
	return nil
}

// finishLocked marks the transaction complete; the caller holds tx.mu.
func (tx *Txn) finishLocked() {
	tx.done = true
	if tx.cancelLease != nil {
		tx.cancelLease()
		tx.cancelLease = nil
	}
}
