package space

import (
	"testing"

	"tpspace/internal/sim"
	"tpspace/internal/tuple"
)

// In-binary replica of the pre-index linear serving plane (global
// write-order list + per-type buckets, one waiter slice scanned on
// every write, O(n) waiter cancellation), kept as the benchmark
// baseline the same way the sim package keeps the old heap. Only the
// store/match/wake mechanics are replicated — leases, journal and
// crash are irrelevant to the serving-path comparison.

type linEntry struct {
	id           uint64
	t            tuple.Tuple
	prev, next   *linEntry
	tPrev, tNext *linEntry
	linked       bool
}

type linBucket struct{ head, tail *linEntry }

type linWaiter struct {
	tmpl tuple.Tuple
	take bool
	cb   func(tuple.Tuple, error)
	done bool
}

type linSpace struct {
	seq        uint64
	size       int
	head, tail *linEntry
	byType     map[string]*linBucket
	waiters    []*linWaiter
}

func newLinSpace() *linSpace {
	return &linSpace{byType: make(map[string]*linBucket)}
}

func (s *linSpace) link(e *linEntry) {
	e.prev = s.tail
	if s.tail != nil {
		s.tail.next = e
	} else {
		s.head = e
	}
	s.tail = e
	b := s.byType[e.t.Type]
	if b == nil {
		b = &linBucket{}
		s.byType[e.t.Type] = b
	}
	e.tPrev = b.tail
	if b.tail != nil {
		b.tail.tNext = e
	} else {
		b.head = e
	}
	b.tail = e
	e.linked = true
	s.size++
}

func (s *linSpace) unlink(e *linEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	b := s.byType[e.t.Type]
	if e.tPrev != nil {
		e.tPrev.tNext = e.tNext
	} else {
		b.head = e.tNext
	}
	if e.tNext != nil {
		e.tNext.tPrev = e.tPrev
	} else {
		b.tail = e.tPrev
	}
	e.prev, e.next, e.tPrev, e.tNext = nil, nil, nil, nil
	e.linked = false
	s.size--
}

func (s *linSpace) write(t tuple.Tuple) {
	stored := t.Clone()
	s.seq++
	e := &linEntry{id: s.seq, t: stored}
	consumed := false
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if w.done {
			continue
		}
		if !w.tmpl.Matches(stored) {
			kept = append(kept, w)
			continue
		}
		if w.take {
			if consumed {
				kept = append(kept, w)
				continue
			}
			consumed = true
		}
		w.done = true
		w.cb(stored.Clone(), nil)
	}
	s.waiters = kept
	if !consumed {
		s.link(e)
	}
}

func (s *linSpace) findOldest(tmpl tuple.Tuple) *linEntry {
	if tmpl.Type != "" {
		b := s.byType[tmpl.Type]
		if b == nil {
			return nil
		}
		for e := b.head; e != nil; e = e.tNext {
			if tmpl.Matches(e.t) {
				return e
			}
		}
		return nil
	}
	for e := s.head; e != nil; e = e.next {
		if tmpl.Matches(e.t) {
			return e
		}
	}
	return nil
}

func (s *linSpace) takeIfExists(tmpl tuple.Tuple) (tuple.Tuple, bool) {
	if e := s.findOldest(tmpl); e != nil {
		s.unlink(e)
		return e.t, true
	}
	return tuple.Tuple{}, false
}

func (s *linSpace) park(tmpl tuple.Tuple, take bool, cb func(tuple.Tuple, error)) *linWaiter {
	w := &linWaiter{tmpl: tmpl, take: take, cb: cb}
	s.waiters = append(s.waiters, w)
	return w
}

// cancel is the old slice-splice waiter cancellation: O(waiters).
func (s *linSpace) cancel(w *linWaiter) {
	for i, x := range s.waiters {
		if x == w {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// Workload shapes. Entries and templates share one type name ("job")
// and one shape, so the old per-type bucket degenerates to a linear
// scan while staying its best case (a single-type store); the indexed
// plane must win on value signatures alone.

func benchTuple(i int) tuple.Tuple { return job("x", int64(i)) }

// nonMatching parks templates of the entry type that no benchmark
// write satisfies.
func nonMatchingTmpl(i int) tuple.Tuple { return job("wait", int64(i)) }

func fillSpace(s *Space, n int) {
	for i := 0; i < n; i++ {
		s.Write(benchTuple(i), NoLease)
	}
}

func fillLin(s *linSpace, n int) {
	for i := 0; i < n; i++ {
		s.write(benchTuple(i))
	}
}

const benchEntries = 100_000

// --- write with a cold waiter plane ---------------------------------

func BenchmarkSpaceWrite100k(b *testing.B) {
	s := New(NewRealRuntime())
	fillSpace(s, benchEntries)
	tmpl := benchTuple(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.Fields[1].Int = int64(benchEntries + i)
		s.Write(tmpl, NoLease)
	}
}

func BenchmarkLinearWrite100k(b *testing.B) {
	s := newLinSpace()
	fillLin(s, benchEntries)
	tmpl := benchTuple(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.Fields[1].Int = int64(benchEntries + i)
		s.write(tmpl)
	}
}

// --- take-hit, adversarial (youngest-first) order --------------------
//
// Taking youngest-first forces the linear bucket to scan past every
// older entry; the value index resolves each template in one bucket
// probe. The indexed loop must also run allocation-free (the
// acceptance gate in scripts/check.sh).

func BenchmarkSpaceTakeHit100k(b *testing.B) {
	s := New(NewRealRuntime())
	fillSpace(s, benchEntries)
	tmpl := benchTuple(0)
	idx := benchEntries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx == 0 {
			b.StopTimer()
			fillSpace(s, benchEntries)
			idx = benchEntries
			b.StartTimer()
		}
		idx--
		tmpl.Fields[1].Int = int64(idx)
		if _, ok := s.TakeIfExists(tmpl); !ok {
			b.Fatal("miss on a present entry")
		}
	}
}

// BenchmarkSpaceTakeKindHit100k is the kind-routed wildcard take: a
// typed template with a wildcard field on an 8-way sharded space. With
// kind routing the template homes to one shard (one lock, one kind
// bucket probe); the legacy value-routed store would lock all eight
// shards per take. Must run allocation-free (gated in
// scripts/check.sh).
func BenchmarkSpaceTakeKindHit100k(b *testing.B) {
	s := New(NewRealRuntime(), WithShards(8))
	fillSpace(s, benchEntries)
	tmpl := anyJob()
	left := benchEntries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if left == 0 {
			b.StopTimer()
			fillSpace(s, benchEntries)
			left = benchEntries
			b.StartTimer()
		}
		left--
		if _, ok := s.TakeIfExists(tmpl); !ok {
			b.Fatal("miss on a present entry")
		}
	}
}

func BenchmarkLinearTakeHit100k(b *testing.B) {
	s := newLinSpace()
	fillLin(s, benchEntries)
	tmpl := benchTuple(0)
	idx := benchEntries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx == 0 {
			b.StopTimer()
			fillLin(s, benchEntries)
			idx = benchEntries
			b.StartTimer()
		}
		idx--
		tmpl.Fields[1].Int = int64(idx)
		if _, ok := s.takeIfExists(tmpl); !ok {
			b.Fatal("miss on a present entry")
		}
	}
}

// --- take-miss -------------------------------------------------------

func BenchmarkSpaceTakeMiss100k(b *testing.B) {
	s := New(NewRealRuntime())
	fillSpace(s, benchEntries)
	tmpl := benchTuple(benchEntries + 1) // never written
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.TakeIfExists(tmpl); ok {
			b.Fatal("hit on an absent entry")
		}
	}
}

func BenchmarkLinearTakeMiss100k(b *testing.B) {
	s := newLinSpace()
	fillLin(s, benchEntries)
	tmpl := benchTuple(benchEntries + 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.takeIfExists(tmpl); ok {
			b.Fatal("hit on an absent entry")
		}
	}
}

// --- write through 10^4 parked waiters (the acceptance workload) -----
//
// 10^5 live entries and 10^4 parked takers whose concrete templates
// never match. The old plane pays a full waiter-slice scan per write;
// the subscription index probes three empty buckets.

const benchWaiters = 10_000

func BenchmarkSpaceWriteParkedWaiters100k(b *testing.B) {
	s := New(NewRealRuntime())
	fillSpace(s, benchEntries)
	sink := func(tuple.Tuple, bool) {}
	for i := 0; i < benchWaiters; i++ {
		s.Take(nonMatchingTmpl(i), sim.Forever, sink)
	}
	tmpl := benchTuple(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.Fields[1].Int = int64(benchEntries + i)
		s.Write(tmpl, NoLease)
	}
}

func BenchmarkLinearWriteParkedWaiters100k(b *testing.B) {
	s := newLinSpace()
	fillLin(s, benchEntries)
	sink := func(tuple.Tuple, error) {}
	for i := 0; i < benchWaiters; i++ {
		s.park(nonMatchingTmpl(i), true, sink)
	}
	tmpl := benchTuple(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.Fields[1].Int = int64(benchEntries + i)
		s.write(tmpl)
	}
}

// --- waiter wake through 10^4 parked strangers -----------------------
//
// Each iteration parks one matching taker and writes its tuple: the
// write must find and wake exactly that waiter past 10^4 parked
// non-matching ones.

func BenchmarkSpaceWaiterWake10k(b *testing.B) {
	s := New(NewRealRuntime())
	sink := func(tuple.Tuple, bool) {}
	for i := 0; i < benchWaiters; i++ {
		s.Take(nonMatchingTmpl(i), sim.Forever, sink)
	}
	hit := job("hit", 0)
	woken := 0
	wake := func(tuple.Tuple, bool) { woken++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Take(hit, sim.Forever, wake)
		s.Write(hit, NoLease)
	}
	b.StopTimer()
	if woken != b.N {
		b.Fatalf("woke %d of %d", woken, b.N)
	}
}

func BenchmarkLinearWaiterWake10k(b *testing.B) {
	s := newLinSpace()
	sink := func(tuple.Tuple, error) {}
	for i := 0; i < benchWaiters; i++ {
		s.park(nonMatchingTmpl(i), true, sink)
	}
	hit := job("hit", 0)
	woken := 0
	wake := func(tuple.Tuple, error) { woken++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.park(hit, true, wake)
		s.write(hit)
	}
	b.StopTimer()
	if woken != b.N {
		b.Fatalf("woke %d of %d", woken, b.N)
	}
}

// --- waiter cancellation: O(1) vs parked population ------------------
//
// The same park+cancel op at two populations two orders of magnitude
// apart; flat ns/op is the O(1) claim (the old slice splice scaled
// with K — see the Linear pair).

func benchSpaceCancel(b *testing.B, parked int) {
	s := New(NewRealRuntime())
	sink := func(tuple.Tuple, bool) {}
	for i := 0; i < parked; i++ {
		s.Take(nonMatchingTmpl(i), sim.Forever, sink)
	}
	cb := func(tuple.Tuple, error) {}
	tmpl := job("solo", 1)
	class, key := classify(tmpl)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := &sub{tmpl: tmpl, class: class, key: key, take: true, cb: cb}
		w.seq = s.subSeq.Add(1)
		w.nodes = make([]subNode, 1)
		sh := s.shardFor(key)
		sh.mu.Lock()
		sh.addSub(w, &w.nodes[0])
		sh.mu.Unlock()
		if !s.cancelSub(w) {
			b.Fatal("cancel failed")
		}
	}
}

func BenchmarkSpaceWaiterCancel100(b *testing.B) { benchSpaceCancel(b, 100) }
func BenchmarkSpaceWaiterCancel10k(b *testing.B) { benchSpaceCancel(b, benchWaiters) }

func benchLinearCancel(b *testing.B, parked int) {
	s := newLinSpace()
	sink := func(tuple.Tuple, error) {}
	for i := 0; i < parked; i++ {
		s.park(nonMatchingTmpl(i), true, sink)
	}
	tmpl := job("solo", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := s.park(tmpl, true, sink)
		s.cancel(w)
	}
}

func BenchmarkLinearWaiterCancel100(b *testing.B) { benchLinearCancel(b, 100) }
func BenchmarkLinearWaiterCancel10k(b *testing.B) { benchLinearCancel(b, benchWaiters) }

// --- 10^6-entry scale (indexed only: the linear plane needs minutes) -

func BenchmarkSpaceTakeHit1M(b *testing.B) {
	const n = 1_000_000
	s := New(NewRealRuntime())
	fillSpace(s, n)
	tmpl := benchTuple(0)
	idx := n
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if idx == 0 {
			b.StopTimer()
			fillSpace(s, n)
			idx = n
			b.StartTimer()
		}
		idx--
		tmpl.Fields[1].Int = int64(idx)
		if _, ok := s.TakeIfExists(tmpl); !ok {
			b.Fatal("miss on a present entry")
		}
	}
}

func BenchmarkSpaceWrite1M(b *testing.B) {
	const n = 1_000_000
	s := New(NewRealRuntime())
	fillSpace(s, n)
	tmpl := benchTuple(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tmpl.Fields[1].Int = int64(n + i)
		s.Write(tmpl, NoLease)
	}
}

// TestTakeHitFastPathZeroAlloc pins the acceptance criterion in a
// test (the bench gate in scripts/check.sh re-checks it from the
// emitted JSON): a concrete-template take hit allocates nothing.
func TestTakeHitFastPathZeroAlloc(t *testing.T) {
	s := New(NewRealRuntime())
	fillSpace(s, 1000)
	tmpl := benchTuple(0)
	idx := 1000
	allocs := testing.AllocsPerRun(500, func() {
		idx--
		tmpl.Fields[1].Int = int64(idx)
		if _, ok := s.TakeIfExists(tmpl); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("take-hit fast path allocates %.1f/op, want 0", allocs)
	}
}
