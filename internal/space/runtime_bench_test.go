package space

import (
	"sync"
	"testing"

	"tpspace/internal/sim"
)

// mutexClock is the pre-wheel RealRuntime.Now: a mutex around a
// lazily initialized WallClock. Kept in-binary as the baseline for
// the lock-free rewrite — every write and every expiry sweep of a
// real server reads the clock, so this is a per-op tax.
type mutexClock struct {
	clock *sim.WallClock
	mu    sync.Mutex
}

func (r *mutexClock) Now() sim.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock.Now()
}

func BenchmarkRealRuntimeNow(b *testing.B) {
	rt := NewRealRuntime()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Now()
	}
}

func BenchmarkRealRuntimeNowParallel(b *testing.B) {
	rt := NewRealRuntime()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Now()
		}
	})
}

func BenchmarkRealRuntimeNowBaselineMutex(b *testing.B) {
	rt := &mutexClock{clock: sim.NewWallClock()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = rt.Now()
	}
}

func BenchmarkRealRuntimeNowBaselineMutexParallel(b *testing.B) {
	rt := &mutexClock{clock: sim.NewWallClock()}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = rt.Now()
		}
	})
}
