package transport

import "tpspace/internal/tpwire"

// MailboxMux shares one slave mailbox among many point-to-point
// conversations, one per peer node — the bus-side analogue of a
// listening socket. A server on one TpWIRE slave uses it to serve
// several client slaves at once: each peer gets its own Conn, with
// inbound messages demultiplexed by their source node.
type MailboxMux struct {
	mb    *tpwire.MailboxDevice
	conns map[uint8]*muxEndpoint
	// OnUnknown, if set, observes messages from peers without a Conn.
	OnUnknown func(tpwire.Message)
}

// NewMailboxMux wraps a mailbox device for multiplexing. The mux owns
// the device's receive callback.
func NewMailboxMux(mb *tpwire.MailboxDevice) *MailboxMux {
	m := &MailboxMux{mb: mb, conns: make(map[uint8]*muxEndpoint)}
	mb.SetOnReceive(func(msg tpwire.Message) {
		if ep, ok := m.conns[msg.Src]; ok && !ep.closed {
			if ep.onRecv != nil {
				ep.stats.MsgsReceived++
				ep.stats.BytesRecv += uint64(len(msg.Payload))
				ep.onRecv(msg.Payload)
			}
			return
		}
		if m.OnUnknown != nil {
			m.OnUnknown(msg)
		}
	})
	return m
}

// Conn returns (creating on first use) the connection to the given
// peer node.
func (m *MailboxMux) Conn(peer uint8) Conn {
	if ep, ok := m.conns[peer]; ok {
		return ep
	}
	ep := &muxEndpoint{mux: m, peer: peer}
	m.conns[peer] = ep
	return ep
}

// Peers lists the peers with open connections.
func (m *MailboxMux) Peers() []uint8 {
	out := make([]uint8, 0, len(m.conns))
	for p, ep := range m.conns {
		if !ep.closed {
			out = append(out, p)
		}
	}
	return out
}

// muxEndpoint is one peer's Conn over the shared mailbox.
type muxEndpoint struct {
	mux    *MailboxMux
	peer   uint8
	onRecv func([]byte)
	closed bool
	stats  Stats
}

// Send implements Conn.
func (e *muxEndpoint) Send(payload []byte) error {
	if e.closed {
		return ErrClosed
	}
	e.stats.MsgsSent++
	e.stats.BytesSent += uint64(len(payload))
	e.mux.mb.Send(e.peer, payload)
	return nil
}

// SetOnReceive implements Conn.
func (e *muxEndpoint) SetOnReceive(fn func([]byte)) { e.onRecv = fn }

// Close implements Conn; the peer slot can be reopened with
// MailboxMux.Conn.
func (e *muxEndpoint) Close() error {
	e.closed = true
	delete(e.mux.conns, e.peer)
	return nil
}

// Stats returns a snapshot of the endpoint's counters.
func (e *muxEndpoint) Stats() Stats { return e.stats }
