// Package transport abstracts the message channels the tuplespace
// stack runs over, so the same client/server code works across every
// link the paper uses: UNIX/TCP sockets (Figure 4), an in-memory
// loopback (the RMI hop inside the host of Figure 5), and the
// co-simulated TpWIRE bus (Figure 5's SC1/NS-2/SC2 path, provided by
// package tpwire's mailboxes).
//
// Transports are message-oriented: a Send delivers one whole payload
// to the peer's receive callback, preserving order.
package transport

import (
	"errors"
	"sync"

	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

// ErrClosed is returned by Send on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// ErrBackpressure is returned by Send on a TCPConn configured with
// WithNonBlockingSend when the outbound queue is full.
var ErrBackpressure = errors.New("transport: outbound queue full")

// ErrTooLarge is returned by Send for payloads above the 16 MiB
// frame limit — the receiving end would reject the frame anyway.
var ErrTooLarge = errors.New("transport: message exceeds frame limit")

// Conn is one endpoint of a bidirectional message channel.
type Conn interface {
	// Send transmits one message to the peer. The payload is owned by
	// the caller again as soon as Send returns (transports copy or
	// finish with it before returning).
	Send(payload []byte) error
	// SetOnReceive installs the delivery callback. It must be set
	// before traffic arrives; delivery order matches send order.
	//
	// Buffer ownership: the payload slice is only valid for the
	// duration of the callback. Transports may recycle the buffer for
	// the next frame the moment the callback returns (TCPConn does);
	// a receiver that retains the payload must copy it.
	SetOnReceive(fn func(payload []byte))
	// Close tears the connection down; further Sends fail.
	Close() error
}

// Stats counts traffic on an endpoint.
type Stats struct {
	MsgsSent     uint64
	MsgsReceived uint64
	BytesSent    uint64
	BytesRecv    uint64
	// ReadErrors counts reader-side failures other than a clean
	// close: oversized frames, corrupt streams, and peers vanishing
	// mid-frame (io.ErrUnexpectedEOF). A clean EOF between frames is
	// not an error.
	ReadErrors uint64
	// WriteBatches counts writer-goroutine flushes on a batched
	// TCPConn; MsgsSent/WriteBatches is the mean frames-per-syscall
	// coalescing factor.
	WriteBatches uint64
}

//
// Simulated pipe: an in-memory duplex channel with configurable
// latency, delivered through kernel events. It models the
// intra-host hops of the paper's architecture (RMI between the
// wrapper and the server, UNIX sockets between SC2 and the wrapper).
//

// PipeConn is one end of a simulated pipe.
type PipeConn struct {
	kernel  *sim.Kernel
	latency sim.Duration
	peer    *PipeConn
	onRecv  func([]byte)
	closed  bool
	stats   Stats
}

// NewSimPipe creates a connected pair of in-memory endpoints on the
// kernel with the given one-way latency.
func NewSimPipe(k *sim.Kernel, latency sim.Duration) (*PipeConn, *PipeConn) {
	a := &PipeConn{kernel: k, latency: latency}
	b := &PipeConn{kernel: k, latency: latency}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (p *PipeConn) Send(payload []byte) error {
	if p.closed || p.peer.closed {
		return ErrClosed
	}
	cp := append([]byte(nil), payload...)
	p.stats.MsgsSent++
	p.stats.BytesSent += uint64(len(cp))
	peer := p.peer
	p.kernel.ScheduleName("transport.pipe", p.latency, func() {
		if peer.closed || peer.onRecv == nil {
			return
		}
		peer.stats.MsgsReceived++
		peer.stats.BytesRecv += uint64(len(cp))
		peer.onRecv(cp)
	})
	return nil
}

// SetOnReceive implements Conn.
func (p *PipeConn) SetOnReceive(fn func([]byte)) { p.onRecv = fn }

// Close implements Conn.
func (p *PipeConn) Close() error {
	p.closed = true
	return nil
}

// Stats returns a snapshot of the endpoint's counters.
func (p *PipeConn) Stats() Stats { return p.stats }

//
// TpWIRE transport: adapts a slave's mailbox device into a Conn
// towards a fixed peer node. The heavy lifting (master-mediated
// transfer, retries, integrity) happens in package tpwire; this
// adapter only fans messages in and out.
//

// MailboxConn is a Conn speaking through a TpWIRE slave mailbox to a
// fixed peer node.
type MailboxConn struct {
	mbox   *tpwire.MailboxDevice
	peer   uint8
	onRecv func([]byte)
	closed bool
	stats  Stats
}

// NewMailboxConn wraps a mailbox into a connection with the given
// peer node. Messages from other nodes are dropped (a slave pair in
// the paper's case study talks point to point).
func NewMailboxConn(mbox *tpwire.MailboxDevice, peer uint8) *MailboxConn {
	c := &MailboxConn{mbox: mbox, peer: peer}
	mbox.SetOnReceive(func(m tpwire.Message) {
		if c.closed || m.Src != c.peer || c.onRecv == nil {
			return
		}
		c.stats.MsgsReceived++
		c.stats.BytesRecv += uint64(len(m.Payload))
		c.onRecv(m.Payload)
	})
	return c
}

// Send implements Conn.
func (c *MailboxConn) Send(payload []byte) error {
	if c.closed {
		return ErrClosed
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += uint64(len(payload))
	c.mbox.Send(c.peer, payload)
	return nil
}

// SetOnReceive implements Conn.
func (c *MailboxConn) SetOnReceive(fn func([]byte)) { c.onRecv = fn }

// Close implements Conn.
func (c *MailboxConn) Close() error {
	c.closed = true
	return nil
}

// Stats returns a snapshot of the endpoint's counters.
func (c *MailboxConn) Stats() Stats { return c.stats }

//
// Loopback: a zero-latency synchronous pair for wall-clock use
// (gateway-to-server inside one process, mirroring the paper's RMI
// hop). Safe for concurrent use.
//

// LoopbackConn is one end of a synchronous in-process pair.
type LoopbackConn struct {
	mu     sync.Mutex
	peer   *LoopbackConn
	onRecv func([]byte)
	closed bool
	stats  Stats
}

// NewLoopback creates a connected synchronous pair: a Send calls the
// peer's receive callback on the calling goroutine.
func NewLoopback() (*LoopbackConn, *LoopbackConn) {
	a := &LoopbackConn{}
	b := &LoopbackConn{}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (l *LoopbackConn) Send(payload []byte) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	l.stats.MsgsSent++
	l.stats.BytesSent += uint64(len(payload))
	peer := l.peer
	l.mu.Unlock()

	peer.mu.Lock()
	fn := peer.onRecv
	closed := peer.closed
	if !closed && fn != nil {
		peer.stats.MsgsReceived++
		peer.stats.BytesRecv += uint64(len(payload))
	}
	peer.mu.Unlock()
	if closed || fn == nil {
		return nil
	}
	// Delivered without a copy: the callback runs on the sender's
	// goroutine before Send returns, and the receive contract already
	// forbids retaining the slice past the callback.
	fn(payload)
	return nil
}

// SetOnReceive implements Conn.
func (l *LoopbackConn) SetOnReceive(fn func([]byte)) {
	l.mu.Lock()
	l.onRecv = fn
	l.mu.Unlock()
}

// Close implements Conn.
func (l *LoopbackConn) Close() error {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the endpoint's counters.
func (l *LoopbackConn) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}
