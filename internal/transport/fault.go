package transport

import "errors"

// ErrDisconnected is returned by Send while a FaultConn's link is cut.
// Unlike ErrClosed it is transient: the connection may be restored.
var ErrDisconnected = errors.New("transport: connection cut (fault injection)")

// FaultStats counts fault-plane activity on a FaultConn.
type FaultStats struct {
	Cuts         uint64 // Cut transitions (either direction)
	DroppedSends uint64 // Sends rejected while down
	DroppedRecvs uint64 // inbound messages discarded while down
}

// FaultConn wraps a Conn with a controllable disconnect: while cut,
// Sends fail with ErrDisconnected and inbound traffic is discarded, as
// if the cable were pulled. The two directions can also be cut
// independently (CutSend/CutRecv), modelling asymmetric partitions
// where A->B is severed while B->A still delivers. Restore re-attaches
// both directions and invokes OnRestore, giving higher layers (the
// wrapper's reconnect-and-resume, the cluster's re-replication) a hook
// to replay pending operations.
type FaultConn struct {
	inner    Conn
	downSend bool
	downRecv bool
	onRecv   func([]byte)
	// OnRestore, if set, runs after each Restore that brought at least
	// one direction back up.
	OnRestore func()
	stats     FaultStats
}

// NewFaultConn wraps inner. The wrapper must be used in place of inner
// everywhere: it takes over inner's receive callback.
func NewFaultConn(inner Conn) *FaultConn {
	f := &FaultConn{inner: inner}
	inner.SetOnReceive(func(p []byte) {
		if f.downRecv {
			f.stats.DroppedRecvs++
			return
		}
		if f.onRecv != nil {
			f.onRecv(p)
		}
	})
	return f
}

// Cut severs both directions until Restore. Cutting an already-cut
// link is a no-op.
func (f *FaultConn) Cut() {
	if f.downSend && f.downRecv {
		return
	}
	f.downSend = true
	f.downRecv = true
	f.stats.Cuts++
}

// CutSend severs only the outgoing direction: Sends fail with
// ErrDisconnected while inbound traffic keeps delivering. Combined
// with the peer side this models an asymmetric partition.
func (f *FaultConn) CutSend() {
	if f.downSend {
		return
	}
	f.downSend = true
	f.stats.Cuts++
}

// CutRecv severs only the incoming direction: inbound traffic is
// discarded while Sends still go out.
func (f *FaultConn) CutRecv() {
	if f.downRecv {
		return
	}
	f.downRecv = true
	f.stats.Cuts++
}

// Restore re-attaches both directions and fires OnRestore.
func (f *FaultConn) Restore() {
	if !f.downSend && !f.downRecv {
		return
	}
	f.downSend = false
	f.downRecv = false
	if f.OnRestore != nil {
		f.OnRestore()
	}
}

// Down reports whether any direction is currently cut.
func (f *FaultConn) Down() bool { return f.downSend || f.downRecv }

// SendDown reports whether the outgoing direction is cut.
func (f *FaultConn) SendDown() bool { return f.downSend }

// RecvDown reports whether the incoming direction is cut.
func (f *FaultConn) RecvDown() bool { return f.downRecv }

// FaultStats returns a snapshot of the fault counters.
func (f *FaultConn) FaultStats() FaultStats { return f.stats }

// Send implements Conn.
func (f *FaultConn) Send(payload []byte) error {
	if f.downSend {
		f.stats.DroppedSends++
		return ErrDisconnected
	}
	return f.inner.Send(payload)
}

// SetOnReceive implements Conn.
func (f *FaultConn) SetOnReceive(fn func([]byte)) { f.onRecv = fn }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }
