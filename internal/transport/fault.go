package transport

import "errors"

// ErrDisconnected is returned by Send while a FaultConn's link is cut.
// Unlike ErrClosed it is transient: the connection may be restored.
var ErrDisconnected = errors.New("transport: connection cut (fault injection)")

// FaultStats counts fault-plane activity on a FaultConn.
type FaultStats struct {
	Cuts         uint64 // Cut transitions
	DroppedSends uint64 // Sends rejected while down
	DroppedRecvs uint64 // inbound messages discarded while down
}

// FaultConn wraps a Conn with a controllable disconnect: while cut,
// Sends fail with ErrDisconnected and inbound traffic is discarded, as
// if the cable were pulled. Restore re-attaches both directions and
// invokes OnRestore, giving higher layers (the wrapper's
// reconnect-and-resume) a hook to replay pending operations.
type FaultConn struct {
	inner  Conn
	down   bool
	onRecv func([]byte)
	// OnRestore, if set, runs after each Restore.
	OnRestore func()
	stats     FaultStats
}

// NewFaultConn wraps inner. The wrapper must be used in place of inner
// everywhere: it takes over inner's receive callback.
func NewFaultConn(inner Conn) *FaultConn {
	f := &FaultConn{inner: inner}
	inner.SetOnReceive(func(p []byte) {
		if f.down {
			f.stats.DroppedRecvs++
			return
		}
		if f.onRecv != nil {
			f.onRecv(p)
		}
	})
	return f
}

// Cut severs the link until Restore. Cutting an already-cut link is a
// no-op.
func (f *FaultConn) Cut() {
	if f.down {
		return
	}
	f.down = true
	f.stats.Cuts++
}

// Restore re-attaches the link and fires OnRestore.
func (f *FaultConn) Restore() {
	if !f.down {
		return
	}
	f.down = false
	if f.OnRestore != nil {
		f.OnRestore()
	}
}

// Down reports whether the link is currently cut.
func (f *FaultConn) Down() bool { return f.down }

// FaultStats returns a snapshot of the fault counters.
func (f *FaultConn) FaultStats() FaultStats { return f.stats }

// Send implements Conn.
func (f *FaultConn) Send(payload []byte) error {
	if f.down {
		f.stats.DroppedSends++
		return ErrDisconnected
	}
	return f.inner.Send(payload)
}

// SetOnReceive implements Conn.
func (f *FaultConn) SetOnReceive(fn func([]byte)) { f.onRecv = fn }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }
