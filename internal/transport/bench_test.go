package transport

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

// frameStream is a net.Conn stub whose Read side replays a framed
// message b.N times from memory, so the receive path is measured
// without socket syscalls: what remains is framing, buffer management,
// and callback dispatch — the code that must not allocate.
type frameStream struct {
	frame  []byte
	total  int64
	served int64
}

func (s *frameStream) Read(p []byte) (int, error) {
	if s.served >= s.total {
		return 0, io.EOF
	}
	n := 0
	for n < len(p) && s.served < s.total {
		off := int(s.served % int64(len(s.frame)))
		c := len(s.frame) - off
		if c > len(p)-n {
			c = len(p) - n
		}
		if rem := s.total - s.served; int64(c) > rem {
			c = int(rem)
		}
		copy(p[n:n+c], s.frame[off:off+c])
		n += c
		s.served += int64(c)
	}
	return n, nil
}

func (s *frameStream) Write(p []byte) (int, error)      { return len(p), nil }
func (s *frameStream) Close() error                     { return nil }
func (s *frameStream) LocalAddr() net.Addr              { return nil }
func (s *frameStream) RemoteAddr() net.Addr             { return nil }
func (s *frameStream) SetDeadline(time.Time) error      { return nil }
func (s *frameStream) SetReadDeadline(time.Time) error  { return nil }
func (s *frameStream) SetWriteDeadline(time.Time) error { return nil }

// BenchmarkTCPReceiveSteady measures the steady-state receive path.
// scripts/check.sh gates on this reporting 0 allocs/op: frames at or
// below the top pool class must be delivered without allocating.
func BenchmarkTCPReceiveSteady(b *testing.B) {
	payload := make([]byte, 128)
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)

	stream := &frameStream{frame: frame, total: int64(b.N) * int64(len(frame))}
	conn := NewTCPConn(stream, WithSyncWrites())
	done := make(chan struct{})
	var got int64
	sink := 0
	conn.SetOnReceive(func(p []byte) {
		sink += int(p[0])
		if got++; got == int64(b.N) {
			close(done)
		}
	})
	b.ReportAllocs()
	<-done
	b.StopTimer()
	conn.Close()
	if got != int64(b.N) {
		b.Fatalf("received %d/%d frames", got, b.N)
	}
	_ = sink
}

// BenchmarkTCPSendBatched measures the batched send path into a
// discard sink: pooled frame buffers keep it allocation-free once the
// pools are warm.
func BenchmarkTCPSendBatched(b *testing.B) {
	conn := NewTCPConn(&frameStream{})
	defer conn.Close()
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}
