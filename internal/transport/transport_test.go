package transport

import (
	"bytes"
	"net"
	"sync"
	"testing"
	"time"

	"tpspace/internal/netsim"
	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

func TestSimPipeDeliveryAndLatency(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, 5*sim.Millisecond)
	var got []byte
	var at sim.Time
	b.SetOnReceive(func(p []byte) { got, at = p, k.Now() })
	if err := a.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
	if at != sim.Time(5*sim.Millisecond) {
		t.Fatalf("delivered at %v", at)
	}
	if st := a.Stats(); st.MsgsSent != 1 || st.BytesSent != 5 {
		t.Fatalf("sender stats %+v", st)
	}
	if st := b.Stats(); st.MsgsReceived != 1 || st.BytesRecv != 5 {
		t.Fatalf("receiver stats %+v", st)
	}
}

func TestSimPipeOrderPreserved(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, sim.Millisecond)
	var got []byte
	b.SetOnReceive(func(p []byte) { got = append(got, p...) })
	for i := byte(0); i < 10; i++ {
		a.Send([]byte{i})
	}
	k.Run()
	for i := byte(0); i < 10; i++ {
		if got[i] != i {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestSimPipeCopiesPayload(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, 0)
	var got []byte
	b.SetOnReceive(func(p []byte) { got = p })
	buf := []byte{1, 2, 3}
	a.Send(buf)
	buf[0] = 99
	k.Run()
	if got[0] != 1 {
		t.Fatal("payload aliased, not copied")
	}
}

func TestSimPipeClose(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, 0)
	b.Close()
	if err := a.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	a2, b2 := NewSimPipe(k, 0)
	a2.Close()
	if err := a2.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	_ = b2
}

func TestLoopbackSynchronous(t *testing.T) {
	a, b := NewLoopback()
	var got []byte
	b.SetOnReceive(func(p []byte) { got = p })
	if err := a.Send([]byte("sync")); err != nil {
		t.Fatal(err)
	}
	if string(got) != "sync" {
		t.Fatal("loopback did not deliver synchronously")
	}
	b.Close()
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal("send to closed loopback peer should drop, not error")
	}
}

func TestLoopbackConcurrency(t *testing.T) {
	a, b := NewLoopback()
	var mu sync.Mutex
	n := 0
	b.SetOnReceive(func(p []byte) { mu.Lock(); n++; mu.Unlock() })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				a.Send([]byte{1})
			}
		}()
	}
	wg.Wait()
	if n != 800 {
		t.Fatalf("delivered %d, want 800", n)
	}
}

func TestMailboxConnOverBus(t *testing.T) {
	k := sim.NewKernel(1)
	chain := tpwire.NewChain(k, tpwire.Config{})
	mb1 := tpwire.NewMailboxDevice(nil)
	chain.AddSlave(1).SetDevice(mb1)
	mb2 := tpwire.NewMailboxDevice(nil)
	chain.AddSlave(2).SetDevice(mb2)
	tpwire.NewPoller(chain, []uint8{1, 2}, 0).Start()

	c1 := NewMailboxConn(mb1, 2)
	c2 := NewMailboxConn(mb2, 1)
	var got []byte
	c2.SetOnReceive(func(p []byte) { got = p })
	var back []byte
	c1.SetOnReceive(func(p []byte) { back = p })

	c1.Send([]byte("ping over the bus"))
	k.RunUntil(sim.Time(sim.Second))
	if string(got) != "ping over the bus" {
		t.Fatalf("forward payload %q", got)
	}
	c2.Send([]byte("pong"))
	k.RunUntil(sim.Time(2 * sim.Second))
	if string(back) != "pong" {
		t.Fatalf("reverse payload %q", back)
	}
	if st := c1.Stats(); st.MsgsSent != 1 || st.MsgsReceived != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMailboxConnFiltersForeignSources(t *testing.T) {
	k := sim.NewKernel(1)
	chain := tpwire.NewChain(k, tpwire.Config{})
	boxes := map[uint8]*tpwire.MailboxDevice{}
	for _, id := range []uint8{1, 2, 3} {
		mb := tpwire.NewMailboxDevice(nil)
		chain.AddSlave(id).SetDevice(mb)
		boxes[id] = mb
	}
	tpwire.NewPoller(chain, []uint8{1, 2, 3}, 0).Start()
	conn := NewMailboxConn(boxes[2], 1) // peer is node 1 only
	var got [][]byte
	conn.SetOnReceive(func(p []byte) { got = append(got, p) })
	boxes[1].Send(2, []byte("from-peer"))
	boxes[3].Send(2, []byte("from-stranger"))
	k.RunUntil(sim.Time(sim.Second))
	if len(got) != 1 || string(got[0]) != "from-peer" {
		t.Fatalf("received %q", got)
	}
}

func TestTCPConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		srv := NewTCPConn(nc)
		srv.SetOnReceive(func(p []byte) {
			// Echo with a prefix.
			srv.Send(append([]byte("echo:"), p...))
		})
		<-done
	}()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	recv := make(chan []byte, 1)
	cli.SetOnReceive(func(p []byte) { recv <- p })
	payload := bytes.Repeat([]byte("x"), 10_000)
	if err := cli.Send(payload); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if len(got) != len(payload)+5 || string(got[:5]) != "echo:" {
			t.Fatalf("echo wrong: %d bytes", len(got))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("echo timed out")
	}
	if st := cli.Stats(); st.MsgsSent != 1 || st.MsgsReceived != 1 {
		t.Fatalf("stats %+v", st)
	}
	cli.Close()
	if err := cli.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPConnManyMessages(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		srv := NewTCPConn(nc)
		srv.SetOnReceive(func(p []byte) { srv.Send(p) })
	}()
	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var mu sync.Mutex
	var got [][]byte
	all := make(chan struct{})
	cli.SetOnReceive(func(p []byte) {
		mu.Lock()
		// The receive buffer is recycled after the callback: copy.
		got = append(got, append([]byte(nil), p...))
		if len(got) == 50 {
			close(all)
		}
		mu.Unlock()
	})
	for i := 0; i < 50; i++ {
		if err := cli.Send([]byte{byte(i), byte(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-all:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d echoes", len(got))
	}
	mu.Lock()
	defer mu.Unlock()
	for i, p := range got {
		if p[0] != byte(i) {
			t.Fatalf("order broken at %d: %v", i, p)
		}
	}
}

func TestNetsimConnRoundTrip(t *testing.T) {
	k := sim.NewKernel(1)
	net := netsim.New(k)
	a := net.NewNode("a")
	b := net.NewNode("b")
	net.ConnectDuplex(a, b, 1e6, sim.Millisecond, 0)
	ca := NewNetsimConn(net, a, b)
	cb := NewNetsimConn(net, b, a)
	var got []byte
	cb.SetOnReceive(func(p []byte) { got = p })
	var back []byte
	ca.SetOnReceive(func(p []byte) { back = p })
	ca.Send([]byte("over ethernet"))
	k.Run()
	if string(got) != "over ethernet" {
		t.Fatalf("forward %q", got)
	}
	cb.Send([]byte("reply"))
	k.Run()
	if string(back) != "reply" {
		t.Fatalf("reverse %q", back)
	}
	if st := ca.Stats(); st.MsgsSent != 1 || st.MsgsReceived != 1 {
		t.Fatalf("stats %+v", st)
	}
	ca.Close()
	if err := ca.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

func TestNetsimConnOverheadOnWire(t *testing.T) {
	k := sim.NewKernel(1)
	net := netsim.New(k)
	a := net.NewNode("a")
	b := net.NewNode("b")
	ab, _ := net.ConnectDuplex(a, b, 1000, 0, 0)
	ca := NewNetsimConn(net, a, b)
	NewNetsimConn(net, b, a).SetOnReceive(func([]byte) {})
	ca.Send(make([]byte, 42))
	k.Run()
	// 42 payload + 58 header = 100 bytes on the wire.
	if got := ab.Stats().Bytes; got != 100 {
		t.Fatalf("wire bytes = %d, want 100", got)
	}
}
