package transport

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// tcpPair returns two TCPConns over a real loopback socket.
func tcpPair(t *testing.T, srvOpts, cliOpts []TCPOption) (srv, cli *TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- nc
	}()
	cnc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	snc := <-accepted
	srv = NewTCPConn(snc, srvOpts...)
	cli = NewTCPConn(cnc, cliOpts...)
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return srv, cli
}

// TestTCPConnFragmentedDelivery drips two frames into the reader one
// byte per write: framing must reassemble across arbitrarily small
// reads.
func TestTCPConnFragmentedDelivery(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side, WithSyncWrites())
	defer conn.Close()
	recv := make(chan []byte, 2)
	conn.SetOnReceive(func(p []byte) { recv <- append([]byte(nil), p...) })

	var wire []byte
	for _, msg := range []string{"fragmented delivery", "still framed"} {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
		wire = append(wire, hdr[:]...)
		wire = append(wire, msg...)
	}
	go func() {
		for _, b := range wire {
			if _, err := raw.Write([]byte{b}); err != nil {
				return
			}
		}
	}()
	for _, want := range []string{"fragmented delivery", "still framed"} {
		select {
		case got := <-recv:
			if string(got) != want {
				t.Fatalf("got %q, want %q", got, want)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("fragmented frame never delivered")
		}
	}
	if st := conn.Stats(); st.MsgsReceived != 2 || st.ReadErrors != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestTCPConnOversizedFrameRejected sends a length prefix above the
// 16 MiB bound: the reader must refuse to allocate, surface the error,
// and count it.
func TestTCPConnOversizedFrameRejected(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side, WithSyncWrites())
	defer conn.Close()
	errCh := make(chan error, 1)
	conn.OnError = func(err error) { errCh <- err }
	conn.SetOnReceive(func([]byte) { t.Error("oversized frame delivered") })

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxTCPMessage+1)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !strings.Contains(err.Error(), "oversized") {
			t.Fatalf("error = %v, want oversized", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError never fired")
	}
	if st := conn.Stats(); st.ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d, want 1", st.ReadErrors)
	}
}

// TestTCPConnMidFrameClose kills the peer between header and payload:
// the truncation must reach OnError with its io.ErrUnexpectedEOF
// context intact, not vanish as a clean close.
func TestTCPConnMidFrameClose(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side, WithSyncWrites())
	defer conn.Close()
	errCh := make(chan error, 1)
	conn.OnError = func(err error) { errCh <- err }
	conn.SetOnReceive(func([]byte) { t.Error("truncated frame delivered") })

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 10)
	if _, err := raw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	raw.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("error = %v, want io.ErrUnexpectedEOF", err)
		}
		if !strings.Contains(err.Error(), "mid-frame") {
			t.Fatalf("error = %v, want mid-frame context", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnError never fired")
	}
	if st := conn.Stats(); st.ReadErrors != 1 {
		t.Fatalf("ReadErrors = %d, want 1", st.ReadErrors)
	}
}

// TestTCPConnCleanEOF closes the peer between frames: a normal close,
// no error, no ReadErrors.
func TestTCPConnCleanEOF(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side, WithSyncWrites())
	defer conn.Close()
	conn.OnError = func(err error) { t.Errorf("unexpected OnError: %v", err) }
	recv := make(chan []byte, 1)
	conn.SetOnReceive(func(p []byte) { recv <- append([]byte(nil), p...) })

	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 2)
	raw.Write(hdr[:])
	raw.Write([]byte("ok"))
	raw.Close()
	select {
	case got := <-recv:
		if string(got) != "ok" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame never delivered")
	}
	// Give the reader a moment to observe EOF before checking.
	time.Sleep(50 * time.Millisecond)
	if st := conn.Stats(); st.ReadErrors != 0 {
		t.Fatalf("ReadErrors = %d, want 0", st.ReadErrors)
	}
}

// TestTCPConnConcurrentSend hammers one batched conn from many
// goroutines (run under -race): every frame must arrive intact, never
// interleaved.
func TestTCPConnConcurrentSend(t *testing.T) {
	srv, cli := tcpPair(t, nil, nil)
	const senders, perSender = 8, 100
	var mu sync.Mutex
	seen := make(map[[2]byte]int)
	all := make(chan struct{})
	srv.SetOnReceive(func(p []byte) {
		if len(p) != 32 {
			t.Errorf("frame length %d, want 32", len(p))
			return
		}
		for _, b := range p[2:] {
			if b != p[0]^p[1] {
				t.Errorf("frame body corrupted: % x", p)
				return
			}
		}
		mu.Lock()
		seen[[2]byte{p[0], p[1]}]++
		n := len(seen)
		mu.Unlock()
		if n == senders*perSender {
			close(all)
		}
	})
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				p := make([]byte, 32)
				p[0], p[1] = byte(s), byte(i)
				for j := 2; j < len(p); j++ {
					p[j] = p[0] ^ p[1]
				}
				if err := cli.Send(p); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	select {
	case <-all:
	case <-time.After(10 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("received %d/%d frames", len(seen), senders*perSender)
	}
}

// TestTCPConnCloseFlushesQueued proves Close drains frames the sender
// already queued instead of racing the writer and dropping them.
func TestTCPConnCloseFlushesQueued(t *testing.T) {
	srv, cli := tcpPair(t, nil, nil)
	const n = 100
	var mu sync.Mutex
	got := 0
	all := make(chan struct{})
	srv.SetOnReceive(func(p []byte) {
		mu.Lock()
		got++
		if got == n {
			close(all)
		}
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := cli.Send([]byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-all:
	case <-time.After(5 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("flushed %d/%d frames before close", got, n)
	}
	if err := cli.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

// TestTCPConnNonBlockingBackpressure fills the queue against a peer
// that never reads: Send must shed with ErrBackpressure instead of
// blocking.
func TestTCPConnNonBlockingBackpressure(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side, WithSendQueue(1), WithNonBlockingSend())
	payload := make([]byte, 128)
	var got error
	// Depth-1 queue plus a writer wedged on the unread pipe: at most
	// two sends can be accepted before the third must shed.
	for i := 0; i < 10; i++ {
		if err := conn.Send(payload); err != nil {
			got = err
			break
		}
	}
	if got != ErrBackpressure {
		t.Fatalf("err = %v, want ErrBackpressure", got)
	}
	raw.Close() // unwedge the writer so Close returns promptly
	conn.Close()
}

// TestTCPConnWriteBatching wedges the writer, queues frames behind it,
// then releases the pipe: the queued frames must go out coalesced
// (fewer vectored writes than messages).
func TestTCPConnWriteBatching(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side)
	defer conn.Close()
	const n = 10
	for i := 0; i < n; i++ {
		if err := conn.Send([]byte{byte(i), 0xEE}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain and deframe the raw side, checking wire-level framing.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			var hdr [4]byte
			if _, err := io.ReadFull(raw, hdr[:]); err != nil {
				done <- err
				return
			}
			if ln := binary.BigEndian.Uint32(hdr[:]); ln != 2 {
				done <- errors.New("bad frame length")
				return
			}
			var body [2]byte
			if _, err := io.ReadFull(raw, body[:]); err != nil {
				done <- err
				return
			}
			if body[0] != byte(i) || body[1] != 0xEE {
				done <- errors.New("bad frame body")
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frames never drained")
	}
	// The writer increments WriteBatches after the flush lands, which
	// can trail the raw-side drain: poll briefly.
	var st Stats
	for deadline := time.Now().Add(5 * time.Second); ; {
		st = conn.Stats()
		if st.WriteBatches > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st.MsgsSent != n {
		t.Fatalf("MsgsSent = %d, want %d", st.MsgsSent, n)
	}
	if st.WriteBatches == 0 || st.WriteBatches >= n {
		t.Fatalf("WriteBatches = %d, want coalescing (0 < batches < %d)", st.WriteBatches, n)
	}
}

// TestTCPConnSyncWrites covers the no-writer-goroutine mode.
func TestTCPConnSyncWrites(t *testing.T) {
	srv, cli := tcpPair(t, nil, []TCPOption{WithSyncWrites()})
	srv.SetOnReceive(func(p []byte) { srv.Send(p) })
	recv := make(chan []byte, 1)
	cli.SetOnReceive(func(p []byte) { recv <- append([]byte(nil), p...) })
	if err := cli.Send([]byte("sync path")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if string(got) != "sync path" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("echo timed out")
	}
	cli.Close()
	if err := cli.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}

// TestTCPConnSendTooLarge rejects messages above the frame bound
// before buffering anything.
func TestTCPConnSendTooLarge(t *testing.T) {
	_, cli := tcpPair(t, nil, nil)
	if err := cli.Send(make([]byte, maxTCPMessage+1)); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

// TestUnbatchedTCPConnRoundTrip keeps the netbench baseline honest:
// it must still speak the same wire protocol as the batched conn.
func TestUnbatchedTCPConnRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		srv := NewTCPConn(nc) // batched side talks to unbatched side
		srv.SetOnReceive(func(p []byte) { srv.Send(p) })
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewUnbatchedTCPConn(nc)
	recv := make(chan []byte, 1)
	cli.SetOnReceive(func(p []byte) { recv <- p })
	if err := cli.Send([]byte("legacy framing")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if string(got) != "legacy framing" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("echo timed out")
	}
	if st := cli.Stats(); st.MsgsSent != 1 || st.MsgsReceived != 1 {
		t.Fatalf("stats %+v", st)
	}
	cli.Close()
	if err := cli.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
}
