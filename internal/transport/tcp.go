package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPConn adapts a net.Conn into a message-oriented Conn using
// 4-byte big-endian length prefixes, the classic socket framing of
// the paper's Java/socket wrapper (Figure 4).
type TCPConn struct {
	mu     sync.Mutex
	nc     net.Conn
	onRecv func([]byte)
	closed bool
	stats  Stats
	// started guards the reader goroutine launch.
	started bool
	// OnError, if set, observes reader-side failures other than a
	// clean close.
	OnError func(error)
}

// maxTCPMessage bounds a single framed message (16 MiB), protecting
// against corrupt length prefixes.
const maxTCPMessage = 16 << 20

// NewTCPConn wraps an established net.Conn. Call SetOnReceive before
// traffic is expected; the reader goroutine starts on the first
// SetOnReceive.
func NewTCPConn(nc net.Conn) *TCPConn { return &TCPConn{nc: nc} }

// Dial connects to a TCP space server.
func Dial(addr string) (*TCPConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPConn(nc), nil
}

// Send implements Conn.
func (t *TCPConn) Send(payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := t.nc.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.nc.Write(payload); err != nil {
		return err
	}
	t.stats.MsgsSent++
	t.stats.BytesSent += uint64(len(payload))
	return nil
}

// SetOnReceive implements Conn and starts the reader goroutine on
// first use.
func (t *TCPConn) SetOnReceive(fn func([]byte)) {
	t.mu.Lock()
	t.onRecv = fn
	start := !t.started && fn != nil
	t.started = t.started || start
	t.mu.Unlock()
	if start {
		go t.readLoop()
	}
}

func (t *TCPConn) readLoop() {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
			t.fail(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxTCPMessage {
			t.fail(fmt.Errorf("transport: oversized message (%d bytes)", n))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(t.nc, buf); err != nil {
			t.fail(err)
			return
		}
		t.mu.Lock()
		fn := t.onRecv
		closed := t.closed
		if !closed {
			t.stats.MsgsReceived++
			t.stats.BytesRecv += uint64(len(buf))
		}
		t.mu.Unlock()
		if closed {
			return
		}
		if fn != nil {
			fn(buf)
		}
	}
}

func (t *TCPConn) fail(err error) {
	t.mu.Lock()
	closed := t.closed
	cb := t.OnError
	t.mu.Unlock()
	if !closed && cb != nil && err != io.EOF {
		cb(err)
	}
}

// Close implements Conn.
func (t *TCPConn) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.nc.Close()
}

// Stats returns a snapshot of the endpoint's counters.
func (t *TCPConn) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
