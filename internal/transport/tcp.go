package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConn adapts a net.Conn into a message-oriented Conn using
// 4-byte big-endian length prefixes, the classic socket framing of
// the paper's Java/socket wrapper (Figure 4).
//
// The send side is pipelined: Send copies the payload into a pooled
// frame buffer and enqueues it on a bounded lock-free MPSC ring
// (sendRing); a dedicated writer goroutine drains the ring and hands
// k frames at a time to the kernel through net.Buffers (one writev
// for the whole batch), so under load k small frames cost one syscall
// instead of 2k. Enqueue is one CAS + one store — concurrent senders
// on different cores never take a lock on the hot path. When the ring
// is full Send blocks by default — backpressure instead of unbounded
// buffering; WithNonBlockingSend turns the wait into ErrBackpressure
// for callers that would rather shed load. WithSyncWrites removes the
// writer goroutine entirely and writes each frame inline as a single
// combined write (still one syscall per frame, never two).
//
// Note the ring is MPSC, not a FIFO across producers: frames from a
// single goroutine stay in order (each Send completes its publish
// before returning), which is the ordering the Conn contract
// promises; frames racing from different goroutines have no defined
// order, exactly as before.
//
// The receive side reads through a bufio.Reader (one syscall ingests
// many frames) into per-class buffers recycled across frames, so the
// steady-state receive path performs zero allocations for frames up
// to 64 KiB. The payload passed to the receive callback is only
// valid until the callback returns (see Conn.SetOnReceive).
type TCPConn struct {
	mu     sync.Mutex // guards onRecv, started, OnError
	nc     net.Conn
	onRecv func([]byte)
	closed atomic.Bool
	// started guards the reader goroutine launch.
	started bool
	// OnError, if set, observes reader- and writer-side failures
	// other than a clean close. Set it before traffic flows.
	OnError func(error)

	cfg tcpConfig

	// Counters are atomics so Send/receive never serialize on a
	// stats lock.
	msgsSent     atomic.Uint64
	msgsReceived atomic.Uint64
	bytesSent    atomic.Uint64
	bytesRecv    atomic.Uint64
	readErrors   atomic.Uint64
	writeBatches atomic.Uint64

	// Batched-writer state (nil/unused under WithSyncWrites).
	ring       *sendRing
	quit       chan struct{}
	quitOnce   sync.Once
	writerDone chan struct{}
	// Writer-goroutine scratch, reused across batches.
	fscratch []*wframe
	wbufs    net.Buffers
}

// maxTCPMessage bounds a single framed message (16 MiB), protecting
// against corrupt length prefixes.
const maxTCPMessage = 16 << 20

// Writer batch bounds: one writev covers at most this many frames or
// bytes. Both are generous — the point is a sane upper bound on the
// iovec array and on latency added by coalescing, not tuning.
const (
	maxBatchFrames = 64
	maxBatchBytes  = 256 << 10
)

// closeFlushBudget bounds how long Close waits for the writer
// goroutine to flush queued frames to a peer that has stopped
// reading.
const closeFlushBudget = 2 * time.Second

// tcpConfig carries the TCPOption knobs.
type tcpConfig struct {
	queueDepth  int
	nonBlocking bool
	syncWrites  bool
}

// TCPOption configures a TCPConn at construction.
type TCPOption func(*tcpConfig)

// WithSendQueue sets the outbound queue depth in frames (default
// 256; rounded up by the ring to the next power of two, minimum 2).
// A deeper queue absorbs bigger bursts before backpressure; a shallow
// one keeps senders close behind the writer.
func WithSendQueue(depth int) TCPOption {
	return func(c *tcpConfig) {
		if depth > 0 {
			c.queueDepth = depth
		}
	}
}

// WithNonBlockingSend makes Send return ErrBackpressure when the
// outbound queue is full instead of blocking until the writer drains
// it.
func WithNonBlockingSend() TCPOption {
	return func(c *tcpConfig) { c.nonBlocking = true }
}

// WithSyncWrites disables the writer goroutine: each Send writes its
// frame inline, as a single combined header+payload write under the
// connection lock. No batching, but also no queue — useful for
// strictly request-at-a-time callers like one-shot CLIs.
func WithSyncWrites() TCPOption {
	return func(c *tcpConfig) { c.syncWrites = true }
}

// NewTCPConn wraps an established net.Conn. Call SetOnReceive before
// traffic is expected; the reader goroutine starts on the first
// SetOnReceive. Unless WithSyncWrites is given, the writer goroutine
// starts immediately.
func NewTCPConn(nc net.Conn, opts ...TCPOption) *TCPConn {
	cfg := tcpConfig{queueDepth: 256}
	for _, o := range opts {
		o(&cfg)
	}
	t := &TCPConn{nc: nc, cfg: cfg}
	if !cfg.syncWrites {
		t.ring = newSendRing(cfg.queueDepth)
		t.quit = make(chan struct{})
		t.writerDone = make(chan struct{})
		go t.writeLoop()
	}
	return t
}

// Dial connects to a TCP space server.
func Dial(addr string, opts ...TCPOption) (*TCPConn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewTCPConn(nc, opts...), nil
}

//
// Send path.
//

// wframe is one queued outbound frame: header and payload contiguous
// in a pooled buffer, so a batch of frames becomes one writev over
// the frames' buffers.
type wframe struct {
	data  []byte // cap ≥ n; [0:4) header, [4:n) payload
	n     int
	class int8 // pool class, -1 = unpooled (oversized)
}

// sendClasses are the pooled frame-buffer sizes. Frames larger than
// the top class are allocated fresh and not recycled.
var sendClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

var sendPools [len(sendClasses)]sync.Pool

// newFrame builds a framed copy of payload in a pooled buffer. The
// copy keeps Send's contract — the caller may reuse payload as soon
// as Send returns — while the writer goroutine owns the frame until
// it hits the kernel.
func newFrame(payload []byte) *wframe {
	need := 4 + len(payload)
	class := int8(-1)
	var f *wframe
	for i, c := range sendClasses {
		if need <= c {
			class = int8(i)
			if v := sendPools[i].Get(); v != nil {
				f = v.(*wframe)
			} else {
				f = &wframe{data: make([]byte, c)}
			}
			break
		}
	}
	if f == nil {
		f = &wframe{data: make([]byte, need)}
	}
	f.n = need
	f.class = class
	binary.BigEndian.PutUint32(f.data[:4], uint32(len(payload)))
	copy(f.data[4:need], payload)
	return f
}

func (f *wframe) release() {
	if f.class >= 0 {
		sendPools[f.class].Put(f)
	}
}

// Send implements Conn. The payload is copied before Send returns;
// delivery happens asynchronously through the writer goroutine
// (synchronously under WithSyncWrites).
func (t *TCPConn) Send(payload []byte) error {
	if len(payload) > maxTCPMessage {
		return ErrTooLarge
	}
	if t.closed.Load() {
		return ErrClosed
	}
	f := newFrame(payload)
	if t.cfg.syncWrites {
		t.mu.Lock()
		if t.closed.Load() {
			t.mu.Unlock()
			f.release()
			return ErrClosed
		}
		// One combined write: a failure between header and payload can
		// no longer desynchronize the peer's framing.
		_, err := t.nc.Write(f.data[:f.n])
		t.mu.Unlock()
		f.release()
		if err == nil {
			t.msgsSent.Add(1)
			t.bytesSent.Add(uint64(len(payload)))
		}
		return err
	}

	if t.cfg.nonBlocking {
		if !t.ring.tryPush(f) {
			f.release()
			return ErrBackpressure
		}
		t.ring.wake()
	} else if err := t.ring.push(f, &t.closed); err != nil {
		f.release()
		return err
	}
	t.msgsSent.Add(1)
	t.bytesSent.Add(uint64(len(payload)))
	return nil
}

// writeLoop drains the outbound ring, coalescing queued frames into
// vectored writes. Between frames it parks on the ring's wake token
// (publish-then-re-check, so a wakeup cannot be lost). On quit it
// flushes whatever is already queued, then closes the socket.
func (t *TCPConn) writeLoop() {
	defer close(t.writerDone)
	for {
		f, ok := t.ring.pop()
		if !ok {
			t.ring.sleeping.Store(true)
			if f, ok = t.ring.pop(); !ok {
				select {
				case <-t.ring.wakeCh:
					t.ring.sleeping.Store(false)
					continue
				case <-t.quit:
					t.ring.sleeping.Store(false)
					// Graceful close: flush queued frames, then tear down.
					for {
						f, ok := t.ring.pop()
						if !ok {
							_ = t.nc.Close()
							return
						}
						if !t.writeBatch(f) {
							t.discardQueued()
							return
						}
					}
				}
			}
			t.ring.sleeping.Store(false)
		}
		if !t.writeBatch(f) {
			t.discardQueued()
			return
		}
	}
}

// writeBatch coalesces first with any frames already queued (up to
// the batch bounds) into one vectored write. It reports false once
// the connection has failed.
func (t *TCPConn) writeBatch(first *wframe) bool {
	frames := append(t.fscratch[:0], first)
	total := first.n
	for len(frames) < maxBatchFrames && total < maxBatchBytes {
		f, ok := t.ring.pop()
		if !ok {
			break
		}
		frames = append(frames, f)
		total += f.n
	}
	bufs := t.wbufs[:0]
	for _, f := range frames {
		bufs = append(bufs, f.data[:f.n])
	}
	t.wbufs = bufs
	_, err := bufs.WriteTo(t.nc)
	for _, f := range frames {
		f.release()
	}
	t.fscratch = frames[:0]
	if err != nil {
		wasClosed := t.closed.Swap(true)
		t.ring.wakeAll()
		t.mu.Lock()
		cb := t.OnError
		t.mu.Unlock()
		t.quitOnce.Do(func() { close(t.quit) })
		_ = t.nc.Close()
		if !wasClosed && cb != nil {
			cb(fmt.Errorf("transport: write: %w", err))
		}
		return false
	}
	t.writeBatches.Add(1)
	return true
}

// discardQueued releases queued frames after a write failure so
// blocked senders drain without touching the dead socket.
func (t *TCPConn) discardQueued() {
	for {
		f, ok := t.ring.pop()
		if !ok {
			return
		}
		f.release()
	}
}

//
// Receive path.
//

// recvClasses are the recycled receive-buffer sizes. The reader
// goroutine owns one buffer per class and reuses it across frames —
// the receive callback must not retain the payload (copy on retain).
var recvClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

// readBufSize is the bufio.Reader window: one read syscall ingests up
// to this many framed bytes.
const readBufSize = 64 << 10

// SetOnReceive implements Conn and starts the reader goroutine on
// first use. The payload slice handed to fn is recycled once fn
// returns; retain requires a copy.
func (t *TCPConn) SetOnReceive(fn func([]byte)) {
	t.mu.Lock()
	t.onRecv = fn
	start := !t.started && fn != nil
	t.started = t.started || start
	t.mu.Unlock()
	if start {
		go t.readLoop()
	}
}

func (t *TCPConn) readLoop() {
	br := bufio.NewReaderSize(t.nc, readBufSize)
	var slabs [len(recvClasses)][]byte
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			t.fail(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxTCPMessage {
			t.fail(fmt.Errorf("transport: oversized message (%d bytes)", n))
			return
		}
		buf := grabRecvBuf(&slabs, int(n))
		if _, err := io.ReadFull(br, buf); err != nil {
			t.fail(err)
			return
		}
		if t.closed.Load() {
			return
		}
		t.mu.Lock()
		fn := t.onRecv
		t.mu.Unlock()
		t.msgsReceived.Add(1)
		t.bytesRecv.Add(uint64(len(buf)))
		if fn != nil {
			fn(buf)
		}
	}
}

// grabRecvBuf returns an n-byte view of the recycled buffer for n's
// size class, allocating the class buffer on first use. Oversized
// frames (above the top class) get a fresh allocation.
func grabRecvBuf(slabs *[len(recvClasses)][]byte, n int) []byte {
	for i, c := range recvClasses {
		if n <= c {
			if slabs[i] == nil {
				slabs[i] = make([]byte, c)
			}
			return slabs[i][:n]
		}
	}
	return make([]byte, n)
}

// fail handles a reader-side error. A clean EOF between frames is a
// normal close; anything else — including a peer vanishing mid-frame,
// which io.ReadFull surfaces as io.ErrUnexpectedEOF — counts in
// Stats.ReadErrors and reaches OnError with its context intact.
func (t *TCPConn) fail(err error) {
	closed := t.closed.Load()
	if !closed && err != io.EOF {
		t.readErrors.Add(1)
	}
	t.mu.Lock()
	cb := t.OnError
	t.mu.Unlock()
	if !closed && cb != nil && err != io.EOF {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("transport: peer closed mid-frame: %w", err)
		}
		cb(err)
	}
}

// Close implements Conn. Frames accepted by Send before Close are
// flushed (bounded by a write deadline) before the socket closes;
// Sends racing Close may be dropped.
func (t *TCPConn) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	if t.cfg.syncWrites {
		return t.nc.Close()
	}
	t.ring.wakeAll()
	// Bound the flush: a peer that stopped reading must not wedge
	// Close behind a full socket buffer.
	_ = t.nc.SetWriteDeadline(time.Now().Add(closeFlushBudget))
	t.quitOnce.Do(func() { close(t.quit) })
	<-t.writerDone
	return nil
}

// Stats returns a snapshot of the endpoint's counters.
func (t *TCPConn) Stats() Stats {
	return Stats{
		MsgsSent:     t.msgsSent.Load(),
		MsgsReceived: t.msgsReceived.Load(),
		BytesSent:    t.bytesSent.Load(),
		BytesRecv:    t.bytesRecv.Load(),
		ReadErrors:   t.readErrors.Load(),
		WriteBatches: t.writeBatches.Load(),
	}
}
