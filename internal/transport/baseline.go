package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// UnbatchedTCPConn is an in-binary replica of the pre-pipelining
// TCPConn: every Send performs two blocking writes (header, then
// payload) while holding the connection mutex, and every received
// frame is read into a freshly allocated buffer with no read
// buffering. It exists solely as the netbench baseline — the "before"
// in the serving-plane before/after comparison — and should not be
// used for anything else.
type UnbatchedTCPConn struct {
	mu      sync.Mutex
	nc      net.Conn
	onRecv  func([]byte)
	closed  bool
	stats   Stats
	started bool
	// OnError, if set, observes reader-side failures other than a
	// clean close.
	OnError func(error)
}

// NewUnbatchedTCPConn wraps an established net.Conn with the legacy
// two-writes-per-message framing.
func NewUnbatchedTCPConn(nc net.Conn) *UnbatchedTCPConn {
	return &UnbatchedTCPConn{nc: nc}
}

// Send implements Conn with the historical double write under the
// lock.
func (t *UnbatchedTCPConn) Send(payload []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := t.nc.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.nc.Write(payload); err != nil {
		return err
	}
	t.stats.MsgsSent++
	t.stats.BytesSent += uint64(len(payload))
	return nil
}

// SetOnReceive implements Conn and starts the reader goroutine on
// first use.
func (t *UnbatchedTCPConn) SetOnReceive(fn func([]byte)) {
	t.mu.Lock()
	t.onRecv = fn
	start := !t.started && fn != nil
	t.started = t.started || start
	t.mu.Unlock()
	if start {
		go t.readLoop()
	}
}

func (t *UnbatchedTCPConn) readLoop() {
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
			t.fail(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > maxTCPMessage {
			t.fail(fmt.Errorf("transport: oversized message (%d bytes)", n))
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(t.nc, buf); err != nil {
			t.fail(err)
			return
		}
		t.mu.Lock()
		fn := t.onRecv
		closed := t.closed
		if !closed {
			t.stats.MsgsReceived++
			t.stats.BytesRecv += uint64(len(buf))
		}
		t.mu.Unlock()
		if closed {
			return
		}
		if fn != nil {
			fn(buf)
		}
	}
}

func (t *UnbatchedTCPConn) fail(err error) {
	t.mu.Lock()
	closed := t.closed
	cb := t.OnError
	t.mu.Unlock()
	if !closed && cb != nil && err != io.EOF {
		cb(err)
	}
}

// Close implements Conn.
func (t *UnbatchedTCPConn) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	return t.nc.Close()
}

// Stats returns a snapshot of the endpoint's counters.
func (t *UnbatchedTCPConn) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
