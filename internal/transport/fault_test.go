package transport

import (
	"errors"
	"testing"

	"tpspace/internal/sim"
)

func TestFaultConnCutAndRestore(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, sim.Millisecond)
	fa := NewFaultConn(a)

	var got [][]byte
	fa.SetOnReceive(func(p []byte) { got = append(got, p) })
	var peerGot int
	b.SetOnReceive(func(p []byte) { peerGot++ })

	// Healthy: traffic flows both ways through the wrapper.
	if err := fa.Send([]byte("out")); err != nil {
		t.Fatalf("healthy send: %v", err)
	}
	if err := b.Send([]byte("in")); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	k.Run()
	if peerGot != 1 || len(got) != 1 || string(got[0]) != "in" {
		t.Fatalf("healthy traffic lost: peerGot=%d got=%q", peerGot, got)
	}

	// Cut: outbound fails with ErrDisconnected, inbound is discarded.
	fa.Cut()
	fa.Cut() // idempotent
	if !fa.Down() {
		t.Fatal("Down() false after Cut")
	}
	if err := fa.Send([]byte("x")); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("send while cut: err = %v, want ErrDisconnected", err)
	}
	b.Send([]byte("dropped"))
	k.Run()
	if len(got) != 1 {
		t.Fatalf("inbound delivered while cut: %q", got)
	}

	// Restore fires the resume hook and traffic flows again.
	restored := 0
	fa.OnRestore = func() { restored++ }
	fa.Restore()
	fa.Restore() // idempotent
	if restored != 1 {
		t.Fatalf("OnRestore fired %d times, want 1", restored)
	}
	if err := fa.Send([]byte("back")); err != nil {
		t.Fatalf("send after restore: %v", err)
	}
	b.Send([]byte("resumed"))
	k.Run()
	if peerGot != 2 || len(got) != 2 || string(got[1]) != "resumed" {
		t.Fatalf("post-restore traffic lost: peerGot=%d got=%q", peerGot, got)
	}

	st := fa.FaultStats()
	if st.Cuts != 1 || st.DroppedSends != 1 || st.DroppedRecvs != 1 {
		t.Fatalf("fault stats = %+v", st)
	}
}

func TestFaultConnCloseForwards(t *testing.T) {
	k := sim.NewKernel(1)
	a, _ := NewSimPipe(k, 0)
	fa := NewFaultConn(a)
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
}
