package transport

import (
	"errors"
	"testing"

	"tpspace/internal/sim"
)

func TestFaultConnCutAndRestore(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, sim.Millisecond)
	fa := NewFaultConn(a)

	var got [][]byte
	fa.SetOnReceive(func(p []byte) { got = append(got, p) })
	var peerGot int
	b.SetOnReceive(func(p []byte) { peerGot++ })

	// Healthy: traffic flows both ways through the wrapper.
	if err := fa.Send([]byte("out")); err != nil {
		t.Fatalf("healthy send: %v", err)
	}
	if err := b.Send([]byte("in")); err != nil {
		t.Fatalf("peer send: %v", err)
	}
	k.Run()
	if peerGot != 1 || len(got) != 1 || string(got[0]) != "in" {
		t.Fatalf("healthy traffic lost: peerGot=%d got=%q", peerGot, got)
	}

	// Cut: outbound fails with ErrDisconnected, inbound is discarded.
	fa.Cut()
	fa.Cut() // idempotent
	if !fa.Down() {
		t.Fatal("Down() false after Cut")
	}
	if err := fa.Send([]byte("x")); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("send while cut: err = %v, want ErrDisconnected", err)
	}
	b.Send([]byte("dropped"))
	k.Run()
	if len(got) != 1 {
		t.Fatalf("inbound delivered while cut: %q", got)
	}

	// Restore fires the resume hook and traffic flows again.
	restored := 0
	fa.OnRestore = func() { restored++ }
	fa.Restore()
	fa.Restore() // idempotent
	if restored != 1 {
		t.Fatalf("OnRestore fired %d times, want 1", restored)
	}
	if err := fa.Send([]byte("back")); err != nil {
		t.Fatalf("send after restore: %v", err)
	}
	b.Send([]byte("resumed"))
	k.Run()
	if peerGot != 2 || len(got) != 2 || string(got[1]) != "resumed" {
		t.Fatalf("post-restore traffic lost: peerGot=%d got=%q", peerGot, got)
	}

	st := fa.FaultStats()
	if st.Cuts != 1 || st.DroppedSends != 1 || st.DroppedRecvs != 1 {
		t.Fatalf("fault stats = %+v", st)
	}
}

func TestFaultConnCloseForwards(t *testing.T) {
	k := sim.NewKernel(1)
	a, _ := NewSimPipe(k, 0)
	fa := NewFaultConn(a)
	if err := fa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
}

// Satellite: an asymmetric partition — A->B cut while B->A delivers.
func TestFaultConnAsymmetricPartition(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, sim.Millisecond)
	fa := NewFaultConn(a)

	var got [][]byte
	fa.SetOnReceive(func(p []byte) { got = append(got, p) })
	peerGot := 0
	b.SetOnReceive(func(p []byte) { peerGot++ })

	fa.CutSend()
	fa.CutSend() // idempotent
	if !fa.Down() || !fa.SendDown() || fa.RecvDown() {
		t.Fatalf("direction flags wrong after CutSend: down=%v send=%v recv=%v",
			fa.Down(), fa.SendDown(), fa.RecvDown())
	}
	// Outbound fails distinguishably...
	if err := fa.Send([]byte("x")); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("send on cut direction: err = %v, want ErrDisconnected", err)
	}
	// ...while the reverse direction still delivers.
	b.Send([]byte("still-delivers"))
	k.Run()
	if len(got) != 1 || string(got[0]) != "still-delivers" {
		t.Fatalf("reverse direction blocked by CutSend: got=%q", got)
	}

	// Flip the asymmetry: recv cut, send restored.
	restored := 0
	fa.OnRestore = func() { restored++ }
	fa.Restore()
	if restored != 1 {
		t.Fatalf("OnRestore fired %d times after directional cut, want 1", restored)
	}
	fa.CutRecv()
	fa.CutRecv() // idempotent
	if !fa.Down() || fa.SendDown() || !fa.RecvDown() {
		t.Fatalf("direction flags wrong after CutRecv: down=%v send=%v recv=%v",
			fa.Down(), fa.SendDown(), fa.RecvDown())
	}
	if err := fa.Send([]byte("goes-out")); err != nil {
		t.Fatalf("send on healthy direction: %v", err)
	}
	b.Send([]byte("discarded"))
	k.Run()
	if peerGot != 1 {
		t.Fatalf("outbound blocked by CutRecv: peerGot=%d", peerGot)
	}
	if len(got) != 1 {
		t.Fatalf("inbound delivered while recv cut: %q", got)
	}

	st := fa.FaultStats()
	if st.Cuts != 2 || st.DroppedSends != 1 || st.DroppedRecvs != 1 {
		t.Fatalf("fault stats = %+v", st)
	}
}

// Satellite: a Cut landing in the middle of an in-flight stream. The
// messages already on the wire when the cut happens are discarded at
// the receiver, and the sender's next attempt surfaces the
// distinguishable ErrDisconnected instead of silently queueing.
func TestFaultConnCutMidStream(t *testing.T) {
	k := sim.NewKernel(1)
	a, b := NewSimPipe(k, sim.Millisecond)
	fa := NewFaultConn(a)

	var got []string
	fa.SetOnReceive(func(p []byte) { got = append(got, string(p)) })

	// A replication stream of 4 messages, one per millisecond; the link
	// is cut at t=2.5ms, while messages 3 and 4 are still in flight.
	for i, m := range []string{"r1", "r2", "r3", "r4"} {
		msg := []byte(m)
		k.Schedule(sim.Duration(i)*sim.Millisecond, func() { b.Send(msg) })
	}
	var sendErr error
	k.Schedule(2*sim.Millisecond+sim.Millisecond/2, func() {
		fa.Cut()
		sendErr = fa.Send([]byte("ack"))
	})
	k.Run()

	if len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Fatalf("delivered = %q, want exactly the pre-cut prefix [r1 r2]", got)
	}
	if !errors.Is(sendErr, ErrDisconnected) {
		t.Fatalf("send during cut stream: err = %v, want ErrDisconnected", sendErr)
	}
	if st := fa.FaultStats(); st.DroppedRecvs != 2 {
		t.Fatalf("DroppedRecvs = %d, want 2 (r3, r4)", st.DroppedRecvs)
	}
}
