package transport

import (
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSendRingFIFOAcrossLaps pushes and pops through several ring
// laps, checking FIFO order and full/empty detection at each wrap.
func TestSendRingFIFOAcrossLaps(t *testing.T) {
	r := newSendRing(4)
	if r.cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.cap())
	}
	next := 0
	popped := 0
	for lap := 0; lap < 5; lap++ {
		for r.tryPush(&wframe{n: next, class: -1}) {
			next++
		}
		if next-popped != r.cap() {
			t.Fatalf("lap %d: ring claims full at %d queued, want %d", lap, next-popped, r.cap())
		}
		for {
			f, ok := r.pop()
			if !ok {
				break
			}
			if f.n != popped {
				t.Fatalf("popped frame %d, want %d", f.n, popped)
			}
			popped++
		}
		if popped != next {
			t.Fatalf("lap %d: drained %d/%d frames", lap, popped, next)
		}
	}
}

// TestSendRingMinimumCapacity documents the degenerate-size guard: a
// depth-1 request must still produce a ring that can tell full from
// empty (capacity 2).
func TestSendRingMinimumCapacity(t *testing.T) {
	r := newSendRing(1)
	if r.cap() != 2 {
		t.Fatalf("cap = %d, want 2", r.cap())
	}
	a, b := &wframe{n: 1, class: -1}, &wframe{n: 2, class: -1}
	if !r.tryPush(a) || !r.tryPush(b) {
		t.Fatal("ring rejected pushes below capacity")
	}
	if r.tryPush(&wframe{n: 3, class: -1}) {
		t.Fatal("full ring accepted a push (slot overwrite)")
	}
	if f, ok := r.pop(); !ok || f != a {
		t.Fatalf("pop = %v,%v, want first frame", f, ok)
	}
	if f, ok := r.pop(); !ok || f != b {
		t.Fatalf("pop = %v,%v, want second frame", f, ok)
	}
	if _, ok := r.pop(); ok {
		t.Fatal("empty ring produced a frame")
	}
}

// TestSendRingConcurrentProducers hammers tryPush from several
// goroutines against one draining consumer and checks nothing is
// lost or duplicated. Run with -race, this is also the memory-order
// check on the publish protocol.
func TestSendRingConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	r := newSendRing(64)
	var wg sync.WaitGroup
	var pushed atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				f := &wframe{n: p*perProducer + i, class: -1}
				for !r.tryPush(f) {
					// Full: yield so the draining consumer gets the
					// core (this test must pass on a 1-CPU box).
					runtime.Gosched()
				}
				pushed.Add(1)
			}
		}(p)
	}
	seen := make(map[int]bool, producers*perProducer)
	deadline := time.Now().Add(30 * time.Second)
	for len(seen) < producers*perProducer {
		f, ok := r.pop()
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("drained %d/%d frames before deadline", len(seen), producers*perProducer)
			}
			runtime.Gosched()
			continue
		}
		if seen[f.n] {
			t.Fatalf("frame %d delivered twice", f.n)
		}
		seen[f.n] = true
	}
	wg.Wait()
	if _, ok := r.pop(); ok {
		t.Fatal("ring still had frames after full drain")
	}
}

// TestTCPConnBackpressureDrainReuse exercises the queue-full → drain
// → reuse cycle on a non-blocking conn: Send sheds with
// ErrBackpressure while the peer is wedged, then succeeds again once
// the writer drains the freed slots.
func TestTCPConnBackpressureDrainReuse(t *testing.T) {
	raw, side := net.Pipe()
	conn := NewTCPConn(side, WithSendQueue(2), WithNonBlockingSend())
	defer conn.Close()
	defer raw.Close()

	payload := make([]byte, 32)
	// Fill until the ring sheds: the peer is not reading, so the
	// writer wedges on its first frame and the rest pile up.
	shed := false
	for i := 0; i < 100; i++ {
		if err := conn.Send(payload); err == ErrBackpressure {
			shed = true
			break
		} else if err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if !shed {
		t.Fatal("never saw ErrBackpressure against a wedged peer")
	}

	// Drain: read everything the writer manages to flush.
	drained := make(chan struct{})
	go func() {
		buf := make([]byte, 4096)
		for {
			raw.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
			if _, err := raw.Read(buf); err != nil {
				close(drained)
				return
			}
		}
	}()
	<-drained

	// Reuse: freed slots must accept frames again.
	ok := false
	for i := 0; i < 100 && !ok; i++ {
		switch err := conn.Send(payload); err {
		case nil:
			ok = true
		case ErrBackpressure:
			time.Sleep(time.Millisecond)
		default:
			t.Fatalf("send after drain: %v", err)
		}
	}
	if !ok {
		t.Fatal("ring never accepted frames after drain")
	}
}

// TestTCPConnCloseEnqueueRace races Send (blocking and non-blocking
// conns) against Close: no Send may hang, and once Close has returned
// every later Send fails with ErrClosed. Run under -race this also
// checks the closed-flag and ring teardown ordering.
func TestTCPConnCloseEnqueueRace(t *testing.T) {
	for _, nb := range []bool{false, true} {
		opts := []TCPOption{WithSendQueue(4)}
		if nb {
			opts = append(opts, WithNonBlockingSend())
		}
		raw, side := net.Pipe()
		conn := NewTCPConn(side, opts...)
		payload := make([]byte, 16)

		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 200; i++ {
					err := conn.Send(payload)
					if err != nil && err != ErrClosed && err != ErrBackpressure {
						t.Errorf("send during close: %v", err)
						return
					}
					if err == ErrClosed {
						return
					}
				}
			}()
		}
		// Keep the peer reading so blocking sends make progress until
		// the moment of Close.
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := raw.Read(buf); err != nil {
					return
				}
			}
		}()
		close(start)
		time.Sleep(2 * time.Millisecond)
		if err := conn.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("senders hung across Close (lost wakeup)")
		}
		if err := conn.Send(payload); err != ErrClosed {
			t.Fatalf("send after close: %v, want ErrClosed", err)
		}
		raw.Close()
	}
}

// BenchmarkSendQueueRing measures the per-frame cost of the MPSC
// ring mechanism itself — one publish and one consume, no scheduler
// involvement — against BenchmarkSendQueueChan, the in-binary replica
// of the buffered channel the TCPConn send queue used before. The
// delta is the per-Send overhead the ring removes.
func BenchmarkSendQueueRing(b *testing.B) {
	r := newSendRing(256)
	f := &wframe{class: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.tryPush(f) {
			b.Fatal("ring full")
		}
		if _, ok := r.pop(); !ok {
			b.Fatal("ring empty")
		}
	}
}

// BenchmarkSendQueueChan is the in-binary baseline for
// BenchmarkSendQueueRing: the previous channel-based queue, same
// depth, one send and one receive per op.
func BenchmarkSendQueueChan(b *testing.B) {
	ch := make(chan *wframe, 256)
	f := &wframe{class: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch <- f
		<-ch
	}
}

// BenchmarkSendQueueRingContended runs GOMAXPROCS producers against
// one draining consumer goroutine — the multi-core contention shape.
// On a 1-CPU box this degenerates to cooperative scheduling and the
// numbers mostly reflect yield cost; on multi-core it shows the
// lock-free enqueue scaling.
func BenchmarkSendQueueRingContended(b *testing.B) {
	r := newSendRing(256)
	stop := make(chan struct{})
	go func() {
		for {
			if _, ok := r.pop(); !ok {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}
	}()
	f := &wframe{class: -1}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for !r.tryPush(f) {
				runtime.Gosched()
			}
		}
	})
	b.StopTimer()
	close(stop)
}

// BenchmarkSendQueueChanContended is the contended in-binary channel
// baseline for BenchmarkSendQueueRingContended.
func BenchmarkSendQueueChanContended(b *testing.B) {
	ch := make(chan *wframe, 256)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
			case <-stop:
				return
			}
		}
	}()
	f := &wframe{class: -1}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			select {
			case ch <- f:
			default:
				runtime.Gosched()
			}
		}
	})
	b.StopTimer()
	close(stop)
}
