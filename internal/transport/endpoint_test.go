package transport

import (
	"testing"

	"tpspace/internal/netsim"
	"tpspace/internal/sim"
)

// meshNet builds a fully connected duplex mesh of n nodes.
func meshNet(k *sim.Kernel, n int) (*netsim.Network, []*netsim.Node) {
	net := netsim.New(k)
	nodes := make([]*netsim.Node, n)
	for i := range nodes {
		nodes[i] = net.NewNode("n" + string(rune('0'+i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			net.ConnectDuplex(nodes[i], nodes[j], 1e9, sim.Millisecond, 0)
		}
	}
	return net, nodes
}

func TestNetsimEndpointDispatchesBySource(t *testing.T) {
	k := sim.NewKernel(1)
	netw, nodes := meshNet(k, 3)
	eps := make([]*NetsimEndpoint, 3)
	for i := range eps {
		eps[i] = NewNetsimEndpoint(netw, nodes[i])
	}

	// Node 0 holds one conn per peer; each peer sends to node 0 and the
	// endpoint must route by packet source.
	var from1, from2 []string
	eps[0].Dial(nodes[1]).SetOnReceive(func(p []byte) { from1 = append(from1, string(p)) })
	eps[0].Dial(nodes[2]).SetOnReceive(func(p []byte) { from2 = append(from2, string(p)) })

	var at0 []string
	eps[1].Dial(nodes[0]).SetOnReceive(func(p []byte) { at0 = append(at0, string(p)) })
	eps[2].Dial(nodes[0]).SetOnReceive(func(p []byte) {})

	if err := eps[1].Dial(nodes[0]).Send([]byte("hello-from-1")); err != nil {
		t.Fatal(err)
	}
	if err := eps[2].Dial(nodes[0]).Send([]byte("hello-from-2")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Dial(nodes[1]).Send([]byte("reply-to-1")); err != nil {
		t.Fatal(err)
	}
	k.Run()

	if len(from1) != 1 || from1[0] != "hello-from-1" {
		t.Fatalf("conn to node1 received %q", from1)
	}
	if len(from2) != 1 || from2[0] != "hello-from-2" {
		t.Fatalf("conn to node2 received %q", from2)
	}
	if len(at0) != 1 || at0[0] != "reply-to-1" {
		t.Fatalf("node1's conn to node0 received %q", at0)
	}
}

func TestNetsimEndpointDialIdempotentAndClose(t *testing.T) {
	k := sim.NewKernel(1)
	netw, nodes := meshNet(k, 2)
	e0 := NewNetsimEndpoint(netw, nodes[0])
	e1 := NewNetsimEndpoint(netw, nodes[1])

	c := e0.Dial(nodes[1])
	if e0.Dial(nodes[1]) != c {
		t.Fatal("Dial of the same peer returned a different conn")
	}

	got := 0
	e1.Dial(nodes[0]).SetOnReceive(func([]byte) { got++ })
	if err := c.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 1 {
		t.Fatalf("delivered %d, want 1", got)
	}

	// Close invalidates the conn; a later Dial gets a fresh one.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("y")); err != ErrClosed {
		t.Fatalf("send after close: err = %v, want ErrClosed", err)
	}
	c2 := e0.Dial(nodes[1])
	if c2 == c {
		t.Fatal("Dial after Close returned the closed conn")
	}
	if err := c2.Send([]byte("z")); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if got != 2 {
		t.Fatalf("fresh conn after close did not deliver: got=%d", got)
	}

	st := c2.Stats()
	if st.MsgsSent != 1 || st.BytesSent != 1 {
		t.Fatalf("fresh conn stats = %+v", st)
	}
}

func TestNetsimEndpointSelfDialPanics(t *testing.T) {
	k := sim.NewKernel(1)
	netw, nodes := meshNet(k, 2)
	e0 := NewNetsimEndpoint(netw, nodes[0])
	defer func() {
		if recover() == nil {
			t.Fatal("self-dial did not panic")
		}
	}()
	e0.Dial(nodes[0])
}
