package transport

import (
	"fmt"

	"tpspace/internal/netsim"
)

// NetsimEndpoint multiplexes one netsim node across any number of
// per-peer connections. netsim.Node carries a single agent, so a node
// that talks to several peers (every member of a cluster mesh) cannot
// hold one NetsimConn per peer: each constructor would steal the
// node's agent from the previous one. The endpoint attaches exactly
// one agent and dispatches inbound packets to the per-peer Conn by the
// packet's source node.
type NetsimEndpoint struct {
	net   *netsim.Network
	local *netsim.Node
	conns map[int]*EndpointConn // keyed by peer node id
	// Overhead is added to every packet's size on the wire
	// (Ethernet + IP + TCP headers; default 58 bytes).
	Overhead int
}

// NewNetsimEndpoint attaches the dispatching agent to local. All
// connections to peers must then be created through Dial.
func NewNetsimEndpoint(net *netsim.Network, local *netsim.Node) *NetsimEndpoint {
	e := &NetsimEndpoint{net: net, local: local, conns: make(map[int]*EndpointConn), Overhead: 58}
	local.Attach(netsim.AgentFunc(func(p *netsim.Packet) {
		if p.Payload == nil || p.Src == nil {
			return
		}
		c := e.conns[p.Src.ID()]
		if c == nil || c.closed || c.onRecv == nil {
			return
		}
		c.stats.MsgsReceived++
		c.stats.BytesRecv += uint64(len(p.Payload))
		c.onRecv(p.Payload)
	}))
	return e
}

// Node returns the endpoint's local node.
func (e *NetsimEndpoint) Node() *netsim.Node { return e.local }

// Dial returns the connection from this endpoint to peer, creating it
// on first use. Routes/links between the nodes must already exist in
// the network. Dialing the same peer twice returns the same Conn.
func (e *NetsimEndpoint) Dial(peer *netsim.Node) *EndpointConn {
	if peer == e.local {
		panic(fmt.Sprintf("transport: endpoint %s dialing itself", e.local.Name()))
	}
	if c, ok := e.conns[peer.ID()]; ok {
		return c
	}
	c := &EndpointConn{ep: e, peer: peer}
	e.conns[peer.ID()] = c
	return c
}

// EndpointConn is the per-peer Conn of a NetsimEndpoint. Each Send
// becomes one packet routed from the endpoint's node to the peer.
type EndpointConn struct {
	ep     *NetsimEndpoint
	peer   *netsim.Node
	onRecv func([]byte)
	closed bool
	stats  Stats
}

// Send implements Conn.
func (c *EndpointConn) Send(payload []byte) error {
	if c.closed {
		return ErrClosed
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += uint64(len(payload))
	c.ep.net.Send(&netsim.Packet{
		Src:     c.ep.local,
		Dst:     c.peer,
		Size:    len(payload) + c.ep.Overhead,
		Payload: append([]byte(nil), payload...),
	})
	return nil
}

// SetOnReceive implements Conn.
func (c *EndpointConn) SetOnReceive(fn func([]byte)) { c.onRecv = fn }

// Close implements Conn. The endpoint keeps the (dead) entry so a
// later Dial of the same peer returns a fresh connection.
func (c *EndpointConn) Close() error {
	c.closed = true
	delete(c.ep.conns, c.peer.ID())
	return nil
}

// Stats returns a snapshot of the connection's counters.
func (c *EndpointConn) Stats() Stats { return c.stats }
