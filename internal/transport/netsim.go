package transport

import "tpspace/internal/netsim"

// NetsimConn adapts a pair of netsim nodes into a message Conn: each
// Send becomes one packet routed from the local node to the peer.
// It models the Ethernet/TCP-IP alternative of Section 4.3 of the
// paper ("the use of the Ethernet as physical medium"), including the
// per-message protocol overhead a TCP/IP stack adds.
type NetsimConn struct {
	net    *netsim.Network
	local  *netsim.Node
	peer   *netsim.Node
	onRecv func([]byte)
	closed bool
	stats  Stats
	// Overhead is added to every packet's size on the wire
	// (Ethernet + IP + TCP headers; default 58 bytes).
	Overhead int
}

// NewNetsimConn builds a connection sending from local to peer.
// Inbound delivery requires the peer side to be created with the
// mirrored node pair; the constructor attaches an agent to local for
// receiving.
func NewNetsimConn(net *netsim.Network, local, peer *netsim.Node) *NetsimConn {
	c := &NetsimConn{net: net, local: local, peer: peer, Overhead: 58}
	local.Attach(netsim.AgentFunc(func(p *netsim.Packet) {
		if c.closed || c.onRecv == nil || p.Payload == nil {
			return
		}
		c.stats.MsgsReceived++
		c.stats.BytesRecv += uint64(len(p.Payload))
		c.onRecv(p.Payload)
	}))
	return c
}

// Send implements Conn.
func (c *NetsimConn) Send(payload []byte) error {
	if c.closed {
		return ErrClosed
	}
	c.stats.MsgsSent++
	c.stats.BytesSent += uint64(len(payload))
	c.net.Send(&netsim.Packet{
		Src:     c.local,
		Dst:     c.peer,
		Size:    len(payload) + c.Overhead,
		Payload: append([]byte(nil), payload...),
	})
	return nil
}

// SetOnReceive implements Conn.
func (c *NetsimConn) SetOnReceive(fn func([]byte)) { c.onRecv = fn }

// Close implements Conn.
func (c *NetsimConn) Close() error {
	c.closed = true
	return nil
}

// Stats returns a snapshot of the endpoint's counters.
func (c *NetsimConn) Stats() Stats { return c.stats }
