package transport

import (
	"sync"
	"sync/atomic"
)

// sendRing is the bounded outbound frame queue of a batched TCPConn:
// a power-of-two ring with lock-free multi-producer enqueue and a
// single consumer (the writer goroutine). It replaces the former
// buffered channel so concurrent senders on different cores publish
// frames with one CAS + one store instead of contending on the
// channel's internal lock.
//
// The ring is a Vyukov bounded MPMC queue used MPSC. Each cell
// carries a sequence number: cells[i].seq starts at i; a producer
// claims slot pos when seq == pos (CAS on enq), writes the frame, and
// publishes with seq = pos+1; the consumer at pos accepts when
// seq == pos+1 and retires the cell with seq = pos+len(cells) for the
// ring's next lap. Go's atomics are sequentially consistent, which is
// stronger than the acquire/release the algorithm needs.
//
// Sleeping and waking are flag-based (Dekker-style), not channel
// rendezvous per frame:
//
//   - consumer: W(sleeping=true) then R(cell.seq) re-check, then park
//   - producer: W(cell.seq) publish, then R(sleeping), wake if set
//
// Under the sequentially consistent total order either the consumer's
// re-check sees the published frame or the producer's flag read sees
// sleeping=true and posts the (buffered, never-blocking) wake token —
// a wakeup cannot be lost, only duplicated, and the consumer
// tolerates spurious wakes by re-polling.
//
// A full ring is the slow path: blocking producers park on a plain
// condvar (fullMu/fullCond) and the consumer broadcasts after freeing
// slots, gated by the hasWaiters flag with the same publish-then-
// re-check discipline (producer: W(hasWaiters) then R(seq) via
// tryPush inside the wait loop; consumer: W(seq) via pop then
// R(hasWaiters)). Contended-full throughput is bounded by the socket
// anyway, so a lock there costs nothing measurable.
type sendRing struct {
	cells []ringCell
	mask  uint64

	enq atomic.Uint64
	_   [7]uint64 // keep the producers' CAS line off the consumer's
	deq atomic.Uint64

	// Consumer parking (empty ring).
	sleeping atomic.Bool
	wakeCh   chan struct{} // cap 1; tokens are idempotent

	// Producer parking (full ring) — slow path only.
	fullMu     sync.Mutex
	fullCond   *sync.Cond
	waiters    int
	hasWaiters atomic.Bool
}

type ringCell struct {
	seq atomic.Uint64
	f   *wframe
}

// newSendRing builds a ring with capacity rounded up to the next
// power of two. The minimum is 2: with a single cell the "free for
// the next lap" sequence (pos+cap) collides with the "occupied"
// sequence (pos+1) and the full/empty states become indistinguishable.
func newSendRing(depth int) *sendRing {
	n := 2
	for n < depth {
		n <<= 1
	}
	r := &sendRing{
		cells:  make([]ringCell, n),
		mask:   uint64(n - 1),
		wakeCh: make(chan struct{}, 1),
	}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	r.fullCond = sync.NewCond(&r.fullMu)
	return r
}

// cap returns the ring's slot count.
func (r *sendRing) cap() int { return len(r.cells) }

// tryPush enqueues f without blocking; it reports false when the ring
// is full. Safe for concurrent producers.
func (r *sendRing) tryPush(f *wframe) bool {
	pos := r.enq.Load()
	for {
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch d := int64(seq - pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.f = f
				cell.seq.Store(pos + 1)
				return true
			}
			pos = r.enq.Load()
		case d < 0:
			// The cell still holds a frame from the previous lap: full.
			return false
		default:
			// Another producer claimed pos; chase the tail.
			pos = r.enq.Load()
		}
	}
}

// pop dequeues the next frame. Single consumer only. It reports false
// when the ring is empty (including momentarily, while a producer is
// mid-publish — the wake protocol covers that window).
func (r *sendRing) pop() (*wframe, bool) {
	pos := r.deq.Load()
	cell := &r.cells[pos&r.mask]
	if cell.seq.Load() != pos+1 {
		return nil, false
	}
	f := cell.f
	cell.f = nil
	cell.seq.Store(pos + r.mask + 1)
	r.deq.Store(pos + 1)
	if r.hasWaiters.Load() {
		r.fullMu.Lock()
		r.fullCond.Broadcast()
		r.fullMu.Unlock()
	}
	return f, true
}

// wake posts the consumer's wake token if the consumer declared
// itself sleeping. Called by producers after a successful push; the
// buffered channel makes the send non-blocking and idempotent.
func (r *sendRing) wake() {
	if r.sleeping.Load() {
		select {
		case r.wakeCh <- struct{}{}:
		default:
		}
	}
}

// push enqueues f, blocking while the ring is full. It returns
// ErrClosed (without releasing f) once closed reports true.
func (r *sendRing) push(f *wframe, closed *atomic.Bool) error {
	if r.tryPush(f) {
		r.wake()
		return nil
	}
	r.fullMu.Lock()
	r.waiters++
	r.hasWaiters.Store(true)
	for {
		if closed.Load() {
			r.releaseWaiterLocked()
			return ErrClosed
		}
		// Re-check after publishing hasWaiters: a pop between our
		// failed tryPush and the flag store must not strand us.
		if r.tryPush(f) {
			r.releaseWaiterLocked()
			r.wake()
			return nil
		}
		r.fullCond.Wait()
	}
}

func (r *sendRing) releaseWaiterLocked() {
	r.waiters--
	if r.waiters == 0 {
		r.hasWaiters.Store(false)
	}
	r.fullMu.Unlock()
}

// wakeAll releases every parked producer (they re-check the closed
// flag) — called when the connection closes or fails.
func (r *sendRing) wakeAll() {
	r.fullMu.Lock()
	r.fullCond.Broadcast()
	r.fullMu.Unlock()
}
