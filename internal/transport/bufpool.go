package transport

import "sync"

// Shared size-class byte pool for message assembly. The serving plane
// builds every frame — rmi envelopes, binary responses, client
// requests — in one of these buffers, hands it to Conn.Send (which
// copies it into its own pooled wframe before returning), and puts it
// back; steady-state traffic then allocates no message buffers at
// all. The classes mirror the transport's frame classes so a pooled
// buffer never forces the send path into its oversized fallback.
//
// Ownership is strictly linear: GetBuf transfers the buffer to the
// caller, PutBuf transfers it back. A buffer must not be Put while
// any reference to its bytes is still live (DESIGN §11).

// bufClasses are the pooled capacities, smallest first.
var bufClasses = [...]int{256, 1 << 10, 4 << 10, 16 << 10, 64 << 10}

var bufPools [len(bufClasses)]sync.Pool

// bufHdrs recycles the *[]byte headers that carry slices through the
// pools, so PutBuf itself does not allocate.
var bufHdrs = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf returns an empty buffer with capacity at least n. Requests
// above the top class get a fresh allocation that PutBuf will simply
// drop.
func GetBuf(n int) []byte {
	for i, c := range bufClasses {
		if n <= c {
			if v := bufPools[i].Get(); v != nil {
				p := v.(*[]byte)
				b := (*p)[:0]
				*p = nil
				bufHdrs.Put(p)
				return b
			}
			return make([]byte, 0, c)
		}
	}
	return make([]byte, 0, n)
}

// PutBuf recycles a buffer obtained from GetBuf (possibly grown by
// appends — it is re-classed by its final capacity). Nil and
// undersized buffers are dropped.
func PutBuf(b []byte) {
	c := cap(b)
	for i := len(bufClasses) - 1; i >= 0; i-- {
		if c >= bufClasses[i] {
			if c > bufClasses[len(bufClasses)-1]*2 {
				return // grown far past the top class: let it go
			}
			p := bufHdrs.Get().(*[]byte)
			*p = b[:0]
			bufPools[i].Put(p)
			return
		}
	}
}
