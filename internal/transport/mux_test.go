package transport

import (
	"testing"

	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

// muxChain builds a chain with a mux-served server slave (id 9) and n
// client slaves (ids 1..n).
func muxChain(t *testing.T, n int) (*sim.Kernel, *MailboxMux, map[uint8]*MailboxConn) {
	t.Helper()
	k := sim.NewKernel(1)
	chain := tpwire.NewChain(k, tpwire.Config{})
	ids := []uint8{9}
	srvMB := tpwire.NewMailboxDevice(nil)
	chain.AddSlave(9).SetDevice(srvMB)
	clients := map[uint8]*MailboxConn{}
	for i := 1; i <= n; i++ {
		id := uint8(i)
		mb := tpwire.NewMailboxDevice(nil)
		chain.AddSlave(id).SetDevice(mb)
		clients[id] = NewMailboxConn(mb, 9)
		ids = append(ids, id)
	}
	tpwire.NewPoller(chain, ids, 0).Start()
	return k, NewMailboxMux(srvMB), clients
}

func TestMuxDemultiplexesBySource(t *testing.T) {
	k, mux, clients := muxChain(t, 3)
	got := map[uint8][]string{}
	for peer := uint8(1); peer <= 3; peer++ {
		peer := peer
		mux.Conn(peer).SetOnReceive(func(p []byte) {
			got[peer] = append(got[peer], string(p))
		})
	}
	clients[1].Send([]byte("from-1"))
	clients[2].Send([]byte("from-2"))
	clients[3].Send([]byte("from-3"))
	k.RunUntil(sim.Time(sim.Second))
	for peer := uint8(1); peer <= 3; peer++ {
		if len(got[peer]) != 1 || got[peer][0] != "from-"+string(rune('0'+peer)) {
			t.Fatalf("peer %d got %v", peer, got[peer])
		}
	}
}

func TestMuxRepliesReachTheRightPeer(t *testing.T) {
	k, mux, clients := muxChain(t, 2)
	// Echo server: each endpoint echoes with its peer id prefixed.
	for peer := uint8(1); peer <= 2; peer++ {
		peer := peer
		conn := mux.Conn(peer)
		conn.SetOnReceive(func(p []byte) {
			conn.Send(append([]byte{peer}, p...))
		})
	}
	var r1, r2 []byte
	clients[1].SetOnReceive(func(p []byte) { r1 = p })
	clients[2].SetOnReceive(func(p []byte) { r2 = p })
	clients[1].Send([]byte("a"))
	clients[2].Send([]byte("b"))
	k.RunUntil(sim.Time(sim.Second))
	if len(r1) != 2 || r1[0] != 1 || r1[1] != 'a' {
		t.Fatalf("client 1 reply %v", r1)
	}
	if len(r2) != 2 || r2[0] != 2 || r2[1] != 'b' {
		t.Fatalf("client 2 reply %v", r2)
	}
}

func TestMuxUnknownPeerObserved(t *testing.T) {
	k, mux, clients := muxChain(t, 2)
	mux.Conn(1).SetOnReceive(func([]byte) {})
	var stray []tpwire.Message
	mux.OnUnknown = func(m tpwire.Message) { stray = append(stray, m) }
	clients[2].Send([]byte("who dis"))
	k.RunUntil(sim.Time(sim.Second))
	if len(stray) != 1 || stray[0].Src != 2 {
		t.Fatalf("stray = %v", stray)
	}
}

func TestMuxCloseAndPeers(t *testing.T) {
	k, mux, clients := muxChain(t, 2)
	c1 := mux.Conn(1)
	mux.Conn(2)
	if len(mux.Peers()) != 2 {
		t.Fatalf("peers = %v", mux.Peers())
	}
	c1.Close()
	if err := c1.Send([]byte("x")); err != ErrClosed {
		t.Fatalf("send after close: %v", err)
	}
	if len(mux.Peers()) != 1 {
		t.Fatalf("peers after close = %v", mux.Peers())
	}
	// A closed peer's traffic goes to OnUnknown.
	var strays int
	mux.OnUnknown = func(tpwire.Message) { strays++ }
	clients[1].Send([]byte("late"))
	k.RunUntil(sim.Time(sim.Second))
	if strays != 1 {
		t.Fatalf("strays = %d", strays)
	}
}
