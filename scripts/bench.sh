#!/bin/sh
# bench.sh — machine-readable bench baseline (make bench).
#
# Runs the kernel micro-benches and the full -plan grid benchmark and
# writes the results as JSON:
#
#   BENCH_kernel.json  kernel calendar and timing-wheel micro-benches
#                      (incl. the in-binary container/heap baselines)
#   BENCH_plan.json    one full planner grid pass: wall ns/op,
#                      allocs/op and the simulated seconds modelled
#   BENCH_space.json   tuplespace serving-plane benches — write,
#                      take-hit, take-miss, waiter-wake and waiter
#                      cancellation at 10^5/10^6 entries and 10^4
#                      parked waiters, incl. the in-binary linear
#                      baselines, the lease-churn benches (wheel vs
#                      legacy per-timer) and the lock-free
#                      RealRuntime.Now reads vs the mutex baseline
#   BENCH_net.json     network serving-plane load generator: 64
#                      closed-loop clients over loopback TCP and the
#                      in-proc pipe, batched/pooled plane vs the
#                      in-binary unbatched baseline, XML and binary
#                      codecs, plus the binary variants — multi-op
#                      coalescing (/b8, 8 ops per batch frame) and
#                      shard-affinity dispatch disabled (/noaff);
#                      records {name, clients, conns, ops,
#                      ops_per_sec, p50_ns, p99_ns, allocs_per_op,
#                      speedup_vs_baseline}
#   BENCH_scaling.json multi-core scaling sweep: the pipe/batched/
#                      binary closed loop re-run under GOMAXPROCS 1,
#                      2, 4, 8 (filtered to what the machine has; P=1
#                      always present as the cross-machine reference);
#                      records {name, gomaxprocs, num_cpu, ops,
#                      ops_per_sec, p50_ns, p99_ns, allocs_per_op,
#                      speedup_vs_p1}
#   BENCH_cluster.json replicated-cluster chaos grid: acked
#                      throughput and failover-recovery time against
#                      cluster size per fault rate, every cell with a
#                      forced primary crash; records {name, nodes,
#                      fault_rate, writes_acked, takes_delivered,
#                      kills, acked_per_sec, detect_ms, recover_ms,
#                      violations} — all in simulated time, so the
#                      records are deterministic
#   BENCH_workloads.json
#                      classic serving workloads (masterworker,
#                      pipeline, stream, farm) at 8 shards: for each
#                      pattern a deterministic sim-plane occupancy
#                      estimate and a measured local-plane run, each
#                      paired with its in-binary all-shard value-routed
#                      baseline; records {name, pattern, plane,
#                      baseline, clients, tasks, shards, units,
#                      elapsed_ns, units_per_sec, mean_latency_ns,
#                      deliveries, speedup_vs_baseline}
#   BENCH_lease.json   lease-engine churn at 10^7 live leases (wheel
#                      vs the in-binary per-timer baseline, with
#                      speedup_vs_baseline and allocs_per_op) plus the
#                      100k-session durable-notify run with a mid-run
#                      reconnect; records {name, live_leases, renews,
#                      leases_per_sec, allocs_per_op,
#                      speedup_vs_baseline} and {name, sessions,
#                      events, events_per_sec, lost_events, gaps}
#
# Every record carries {name, ns_per_op, allocs_per_op,
# simulated_seconds}; benches without a simulated-time dimension
# record 0. Downstream tooling (scripts/check.sh, CI trend lines)
# parses these files instead of scraping bench text.
# Usage: scripts/bench.sh   (or: make bench)
set -eu

cd "$(dirname "$0")/.."

# bench_to_json parses `go test -bench` output on stdin into a JSON
# array: one object per bench line, ranks found by their unit suffix.
bench_to_json() {
    awk '
    BEGIN { print "["; n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = "0"; allocs = "0"; sims = "0"
        for (i = 2; i < NF; i++) {
            if ($(i + 1) == "ns/op") ns = $i
            else if ($(i + 1) == "allocs/op") allocs = $i
            else if ($(i + 1) == "sim-s") sims = $i
        }
        if (n++) printf ",\n"
        printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"simulated_seconds\": %s}", \
            name, ns, allocs, sims
    }
    END { if (n) printf "\n"; print "]" }
    '
}

echo "==> kernel calendar + timing-wheel benches -> BENCH_kernel.json"
go test -run '^$' -bench '^Benchmark(Kernel|Wheel)' -benchmem ./internal/sim/ \
    | tee /dev/stderr | bench_to_json > BENCH_kernel.json

echo "==> planner grid bench -> BENCH_plan.json"
go test -run '^$' -bench '^BenchmarkPlanGrid$' -benchmem -benchtime=1x . \
    | tee /dev/stderr | bench_to_json > BENCH_plan.json

echo "==> space serving-plane benches -> BENCH_space.json"
go test -run '^$' -bench '^Benchmark(Space|Linear|RealRuntime)' -benchmem \
    -benchtime=200ms ./internal/space/ \
    | tee /dev/stderr | bench_to_json > BENCH_space.json

echo "==> network serving-plane load generator -> BENCH_net.json"
go run ./cmd/tpbench -netbench -json | tee /dev/stderr > BENCH_net.json

echo "==> multi-core scaling sweep -> BENCH_scaling.json"
go run ./cmd/tpbench -netbench -scaling -json | tee /dev/stderr > BENCH_scaling.json

echo "==> replicated-cluster chaos grid -> BENCH_cluster.json"
go run ./cmd/tpbench -cluster -json | tee /dev/stderr > BENCH_cluster.json

echo "==> classic serving workloads -> BENCH_workloads.json"
go run ./cmd/tpbench -workload all -shards 8 -json | tee /dev/stderr > BENCH_workloads.json

echo "==> lease-engine churn + durable-notify fleet -> BENCH_lease.json"
go run ./cmd/tpbench -leasebench -notifybench -json | tee /dev/stderr > BENCH_lease.json

echo "OK: wrote BENCH_kernel.json BENCH_plan.json BENCH_space.json BENCH_net.json BENCH_scaling.json BENCH_cluster.json BENCH_workloads.json BENCH_lease.json"
