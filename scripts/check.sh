#!/bin/sh
# check.sh — the repo's one-stop verification gate:
#   gofmt gate, vet, build, full tests under the race detector (which
#   also covers the parallel experiment runner's and chaos harness's
#   guard tests), a fuzz smoke over every fuzz target, and the kernel
#   micro-benches executed once each as a smoke test.
# Usage: scripts/check.sh   (or: make check)
#   FUZZTIME=2s scripts/check.sh   # shorten/lengthen the fuzz smoke
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l cmd internal bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (FUZZTIME=${FUZZTIME:=10s} per target)"
# Go runs one -fuzz target per invocation.
go test -run '^$' -fuzz '^FuzzUnpackTX$' -fuzztime "$FUZZTIME" ./internal/frame/
go test -run '^$' -fuzz '^FuzzUnpackRX$' -fuzztime "$FUZZTIME" ./internal/frame/
go test -run '^$' -fuzz '^FuzzDecodeTupleBinary$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzUnmarshalRequest$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzRSPDecode$' -fuzztime "$FUZZTIME" ./internal/cosim/
go test -run '^$' -fuzz '^FuzzRSPStubHandle$' -fuzztime "$FUZZTIME" ./internal/cosim/

echo "==> kernel bench smoke (-benchtime=1x)"
go test -run '^$' -bench 'BenchmarkKernel' -benchtime=1x ./internal/sim/

echo "OK"
