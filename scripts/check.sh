#!/bin/sh
# check.sh — the repo's one-stop verification gate:
#   gofmt gate, vet, build, full tests under the race detector (which
#   also covers the parallel experiment runner's and chaos harness's
#   guard tests), a fuzz smoke over every fuzz target, a fast-path
#   equivalence smoke (tpbench output must be byte-identical with and
#   without -nofastpath), kernel/space/transport/wrapper bench
#   regression smokes that fail if the calendar's schedule/churn
#   paths, the space's take hot paths, the steady-state TCP receive
#   path, or the gateway's binary decode->space->respond path
#   allocate, a tiny -netbench run of the network serving plane
#   including the multi-op batch rows (-batchops 8), and a
#   cluster-chaos smoke: the replicated 3-node cluster tests under
#   -race plus a full tpbench -cluster -chaos grid asserting the
#   invariants (no acked write lost, at-most-once take).
# Usage: scripts/check.sh   (or: make check)
#   FUZZTIME=2s scripts/check.sh   # shorten/lengthen the fuzz smoke
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l cmd internal bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (FUZZTIME=${FUZZTIME:=10s} per target)"
# Go runs one -fuzz target per invocation.
go test -run '^$' -fuzz '^FuzzUnpackTX$' -fuzztime "$FUZZTIME" ./internal/frame/
go test -run '^$' -fuzz '^FuzzUnpackRX$' -fuzztime "$FUZZTIME" ./internal/frame/
go test -run '^$' -fuzz '^FuzzDecodeTupleBinary$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzUnmarshalRequest$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzBatchFrame$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzRSPDecode$' -fuzztime "$FUZZTIME" ./internal/cosim/
go test -run '^$' -fuzz '^FuzzRSPStubHandle$' -fuzztime "$FUZZTIME" ./internal/cosim/

echo "==> fast-path equivalence smoke (tpbench with vs without -nofastpath)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/tpbench" ./cmd/tpbench
for mode in "-table 4" "-sweep" "-fig 7"; do
    # shellcheck disable=SC2086
    "$tmp/tpbench" $mode > "$tmp/fast.txt"
    # shellcheck disable=SC2086
    "$tmp/tpbench" $mode -nofastpath > "$tmp/slow.txt"
    if ! cmp -s "$tmp/fast.txt" "$tmp/slow.txt"; then
        echo "fast path output diverges for: tpbench $mode" >&2
        diff "$tmp/slow.txt" "$tmp/fast.txt" >&2 || true
        exit 1
    fi
done

echo "==> kernel bench regression smoke (schedule/churn must not allocate)"
go test -run '^$' -bench '^BenchmarkKernel(Schedule|Churn)$' -benchmem \
    -benchtime=10000x ./internal/sim/ | tee "$tmp/kernelbench.txt"
if awk '/^BenchmarkKernel(Schedule|Churn)-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/kernelbench.txt"; then
    :
else
    echo "kernel calendar regression: schedule/churn allocates" >&2
    exit 1
fi

echo "==> space bench regression smoke (take paths must not allocate)"
go test -run '^$' -bench '^BenchmarkSpaceTake(Hit|Miss)100k$' -benchmem \
    -benchtime=2000x ./internal/space/ | tee "$tmp/spacebench.txt"
if awk '/^BenchmarkSpaceTake(Hit|Miss)100k-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/spacebench.txt"; then
    :
else
    echo "space serving-plane regression: take hot path allocates" >&2
    exit 1
fi

echo "==> transport bench regression smoke (steady-state TCP receive must not allocate)"
go test -run '^$' -bench '^BenchmarkTCPReceiveSteady$' -benchmem \
    -benchtime=20000x ./internal/transport/ | tee "$tmp/tcpbench.txt"
if awk '/^BenchmarkTCPReceiveSteady-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/tcpbench.txt"; then
    :
else
    echo "transport regression: steady-state TCP receive allocates" >&2
    exit 1
fi

echo "==> wrapper bench regression smoke (binary decode->space->respond must not allocate)"
go test -run '^$' -bench '^BenchmarkBinServeTakeHit$' -benchmem \
    -benchtime=20000x ./internal/wrapper/ | tee "$tmp/wrapbench.txt"
if awk '/^BenchmarkBinServeTakeHit-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/wrapbench.txt"; then
    :
else
    echo "wrapper regression: binary serve path allocates" >&2
    exit 1
fi

echo "==> network serving-plane smoke (tpbench -netbench, tiny run, batchops 8)"
"$tmp/tpbench" -netbench -clients 4 -netops 80 -batchops 8 > "$tmp/netbench.txt"
grep -q "tcp/baseline/xml" "$tmp/netbench.txt"
grep -q "tcp/batched/binary" "$tmp/netbench.txt"
grep -q "pipe/batched/binary/b8" "$tmp/netbench.txt"
grep -q "pipe/batched/binary/noaff" "$tmp/netbench.txt"

echo "==> cluster-chaos smoke (3 nodes, forced primary crash, invariants, -race)"
go test -race -run '^TestClusterChaos' ./internal/core/
"$tmp/tpbench" -cluster -chaos > "$tmp/cluster.txt"
grep -q "invariants: no acked write lost" "$tmp/cluster.txt"
if grep -q "VIOLATION" "$tmp/cluster.txt"; then
    echo "cluster chaos invariant violations:" >&2
    cat "$tmp/cluster.txt" >&2
    exit 1
fi

echo "OK"
