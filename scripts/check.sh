#!/bin/sh
# check.sh — the repo's one-stop verification gate:
#   gofmt gate, vet, build, full tests under the race detector (which
#   also covers the parallel experiment runner's and chaos harness's
#   guard tests), a fuzz smoke over every fuzz target, a fast-path
#   equivalence smoke (tpbench output must be byte-identical with and
#   without -nofastpath), kernel/space/transport/wrapper bench
#   regression smokes that fail if the calendar's schedule/churn
#   paths, the space's take hot paths, the steady-state TCP receive
#   path, or the gateway's binary decode->space->respond path
#   allocate, a sync-client-op alloc gate (the pooled completion-cell
#   path must stay <=1 alloc/op end to end), a tiny -netbench run of
#   the network serving plane including the multi-op batch rows
#   (-batchops 8), a -scaling smoke (the GOMAXPROCS sweep must emit
#   its P=1 reference row), a classic-workload smoke (every pattern of
#   tpbench -workload must emit its sim estimate pair and its
#   kind-routed vs all-shard baseline pair over the pipe plane; the
#   space gate above also pins the kind-routed wildcard take at 0
#   allocs/op), and a
#   cluster-chaos smoke: the replicated 3-node cluster tests under
#   -race plus a full tpbench -cluster -chaos grid asserting the
#   invariants (no acked write lost, at-most-once take), a
#   timing-wheel 0-alloc gate (insert/cancel/expire), a lease-churn
#   smoke (-leasebench, wheel row must not allocate), a durable-notify
#   resume smoke (-notifybench, exactly-once across a mid-run
#   reconnect), and a byte-identity diff of every paper CLI output
#   (-table 4, -sweep, -fig 7, -chaos, -plan) against the committed
#   goldens in internal/core/testdata/golden_cli/.
# Usage: scripts/check.sh   (or: make check)
#   FUZZTIME=2s scripts/check.sh   # shorten/lengthen the fuzz smoke
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l cmd internal bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> fuzz smoke (FUZZTIME=${FUZZTIME:=10s} per target)"
# Go runs one -fuzz target per invocation.
go test -run '^$' -fuzz '^FuzzUnpackTX$' -fuzztime "$FUZZTIME" ./internal/frame/
go test -run '^$' -fuzz '^FuzzUnpackRX$' -fuzztime "$FUZZTIME" ./internal/frame/
go test -run '^$' -fuzz '^FuzzDecodeTupleBinary$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzUnmarshalRequest$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzBatchFrame$' -fuzztime "$FUZZTIME" ./internal/xmlcodec/
go test -run '^$' -fuzz '^FuzzRSPDecode$' -fuzztime "$FUZZTIME" ./internal/cosim/
go test -run '^$' -fuzz '^FuzzRSPStubHandle$' -fuzztime "$FUZZTIME" ./internal/cosim/

echo "==> fast-path equivalence smoke (tpbench with vs without -nofastpath)"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/tpbench" ./cmd/tpbench
for mode in "-table 4" "-sweep" "-fig 7"; do
    # shellcheck disable=SC2086
    "$tmp/tpbench" $mode > "$tmp/fast.txt"
    # shellcheck disable=SC2086
    "$tmp/tpbench" $mode -nofastpath > "$tmp/slow.txt"
    if ! cmp -s "$tmp/fast.txt" "$tmp/slow.txt"; then
        echo "fast path output diverges for: tpbench $mode" >&2
        diff "$tmp/slow.txt" "$tmp/fast.txt" >&2 || true
        exit 1
    fi
done

echo "==> kernel bench regression smoke (schedule/churn must not allocate)"
go test -run '^$' -bench '^BenchmarkKernel(Schedule|Churn)$' -benchmem \
    -benchtime=10000x ./internal/sim/ | tee "$tmp/kernelbench.txt"
if awk '/^BenchmarkKernel(Schedule|Churn)-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/kernelbench.txt"; then
    :
else
    echo "kernel calendar regression: schedule/churn allocates" >&2
    exit 1
fi

echo "==> wheel bench regression smoke (insert/cancel/expire must not allocate)"
go test -run '^$' -bench '^BenchmarkWheel(Insert|Cancel|Expire)$' -benchmem \
    -benchtime=10000x ./internal/sim/ | tee "$tmp/wheelbench.txt"
if awk '/^BenchmarkWheel(Insert|Cancel|Expire)-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/wheelbench.txt"; then
    :
else
    echo "timing-wheel regression: insert/cancel/expire allocates" >&2
    exit 1
fi

echo "==> space bench regression smoke (take paths must not allocate)"
go test -run '^$' -bench '^BenchmarkSpaceTake(Hit|Miss|KindHit)100k$' -benchmem \
    -benchtime=2000x ./internal/space/ | tee "$tmp/spacebench.txt"
if awk '/^BenchmarkSpaceTake(Hit|Miss|KindHit)100k-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/spacebench.txt"; then
    :
else
    echo "space serving-plane regression: take hot path allocates" >&2
    exit 1
fi

echo "==> transport bench regression smoke (steady-state TCP receive must not allocate)"
go test -run '^$' -bench '^BenchmarkTCPReceiveSteady$' -benchmem \
    -benchtime=20000x ./internal/transport/ | tee "$tmp/tcpbench.txt"
if awk '/^BenchmarkTCPReceiveSteady-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/tcpbench.txt"; then
    :
else
    echo "transport regression: steady-state TCP receive allocates" >&2
    exit 1
fi

echo "==> wrapper bench regression smoke (binary decode->space->respond must not allocate)"
go test -run '^$' -bench '^BenchmarkBinServeTakeHit$' -benchmem \
    -benchtime=20000x ./internal/wrapper/ | tee "$tmp/wrapbench.txt"
if awk '/^BenchmarkBinServeTakeHit-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 0) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/wrapbench.txt"; then
    :
else
    echo "wrapper regression: binary serve path allocates" >&2
    exit 1
fi

echo "==> sync client op gate (pooled completion cells, <=1 alloc/op end to end)"
go test -run '^$' -bench '^BenchmarkSyncClientOpCells$' -benchmem \
    -benchtime=20000x ./internal/wrapper/ | tee "$tmp/syncbench.txt"
if awk '/^BenchmarkSyncClientOpCells-/ {
        for (i = 2; i < NF; i++)
            if ($(i + 1) == "allocs/op" && $i + 0 > 1) { bad = 1; print $1, $i, "allocs/op" }
    } END { exit bad }' "$tmp/syncbench.txt"; then
    :
else
    echo "completion-plane regression: sync client op exceeds 1 alloc/op" >&2
    exit 1
fi

echo "==> network serving-plane smoke (tpbench -netbench, tiny run, batchops 8)"
"$tmp/tpbench" -netbench -clients 4 -netops 80 -batchops 8 > "$tmp/netbench.txt"
grep -q "tcp/baseline/xml" "$tmp/netbench.txt"
grep -q "tcp/batched/binary" "$tmp/netbench.txt"
grep -q "pipe/batched/binary/b8" "$tmp/netbench.txt"
grep -q "pipe/batched/binary/noaff" "$tmp/netbench.txt"

echo "==> multi-core scaling smoke (tpbench -netbench -scaling, tiny run)"
"$tmp/tpbench" -netbench -scaling -clients 4 -netops 80 > "$tmp/scaling.txt"
grep -q "Multi-core scaling" "$tmp/scaling.txt"
# The P=1 reference row must always be present, whatever NumCPU is.
awk '$1 == "1" { found = 1 } END { exit !found }' "$tmp/scaling.txt"

echo "==> classic workload smoke (every pattern, sim estimate + pipe plane)"
# Each suite run emits the deterministic sim estimate pair plus the
# kind-routed vs all-shard baseline pair on the requested plane.
"$tmp/tpbench" -workload all -plane pipe -clients 3 -wtasks 24 > "$tmp/workloads.txt"
for p in masterworker pipeline stream farm; do
    grep -q "^$p/sim " "$tmp/workloads.txt"
    grep -q "^$p/sim/baseline " "$tmp/workloads.txt"
    grep -q "^$p/pipe " "$tmp/workloads.txt"
    grep -q "^$p/pipe/baseline " "$tmp/workloads.txt"
done

echo "==> cluster-chaos smoke (3 nodes, forced primary crash, invariants, -race)"
go test -race -run '^TestClusterChaos' ./internal/core/
"$tmp/tpbench" -cluster -chaos > "$tmp/cluster.txt"
grep -q "invariants: no acked write lost" "$tmp/cluster.txt"
if grep -q "VIOLATION" "$tmp/cluster.txt"; then
    echo "cluster chaos invariant violations:" >&2
    cat "$tmp/cluster.txt" >&2
    exit 1
fi

echo "==> lease-engine churn smoke (tpbench -leasebench, tiny run, books must balance)"
# The run panics if the expiry books don't balance; the wheel row must
# stay allocation-free. The 10x speedup target is only meaningful at
# the full 10^7 scale (scripts/bench.sh) — not asserted here.
"$tmp/tpbench" -leasebench -leases 20000 > "$tmp/leasebench.txt"
grep -q "wheel speedup over per-timer baseline" "$tmp/leasebench.txt"
if awk '$1 == "wheel" && $5 + 0 > 0 { exit 1 }' "$tmp/leasebench.txt"; then
    :
else
    echo "lease engine regression: wheel renew path allocates" >&2
    cat "$tmp/leasebench.txt" >&2
    exit 1
fi

echo "==> durable-notify resume smoke (tpbench -notifybench, tiny fleet, exactly-once)"
# tpbench exits 1 itself if any event is lost or gapped across the
# mid-run reconnect.
"$tmp/tpbench" -notifybench -sessions 400 > "$tmp/notifybench.txt"
grep -q "OK: exactly-once delivery across reconnect" "$tmp/notifybench.txt"

echo "==> golden paper outputs (byte-identical to the committed goldens)"
golden=internal/core/testdata/golden_cli
for spec in "table4.txt:-table 4" "sweep.csv:-sweep" "fig7.txt:-fig 7" \
            "chaos.txt:-chaos" "plan.txt:-plan"; do
    file=${spec%%:*}
    flags=${spec#*:}
    # shellcheck disable=SC2086
    "$tmp/tpbench" $flags > "$tmp/golden_out.txt"
    if ! cmp -s "$golden/$file" "$tmp/golden_out.txt"; then
        echo "paper CLI output diverged from golden: tpbench $flags vs $golden/$file" >&2
        diff "$golden/$file" "$tmp/golden_out.txt" >&2 || true
        exit 1
    fi
done

echo "OK"
