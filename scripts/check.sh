#!/bin/sh
# check.sh — the repo's one-stop verification gate:
#   vet, build, full tests under the race detector (which also covers
#   the parallel experiment runner's guard tests), and the kernel
#   micro-benches executed once each as a smoke test.
# Usage: scripts/check.sh   (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> kernel bench smoke (-benchtime=1x)"
go test -run '^$' -bench 'BenchmarkKernel' -benchtime=1x ./internal/sim/

echo "OK"
