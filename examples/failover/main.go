// Failover: the redundant-actuator scenario of Figure 1.
//
// A control agent requests an actuator for the "conveyor" device; two
// actuator agents compete for the request; the winner operates and
// heartbeats through the space; at t=30s we kill it, and the backup
// detects the missing heartbeats and takes over — the four-step
// algorithm of Section 2.1.
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"tpspace/internal/agents"
	"tpspace/internal/sim"
	"tpspace/internal/space"
)

func main() {
	k := sim.NewKernel(7)
	sp := space.New(space.SimRuntime{K: k})
	api := agents.LocalSpace{S: sp}
	tick := 500 * sim.Millisecond

	ctrl := agents.NewController(k, api, "conveyor", tick)
	primary := agents.NewActuator(k, api, "actuator-A", "conveyor", tick)
	backup := agents.NewActuator(k, api, "actuator-B", "conveyor", tick)

	backup.OnTakeover = func(at sim.Time) {
		fmt.Printf("[%v] actuator-B detected missing heartbeats and TOOK OVER\n", at)
	}

	// Step 1: the control agent puts the start request in the space.
	ctrl.Start()
	fmt.Println("[0s] controller wrote the actuator-start tuple")

	// Step 2: both actuators try to remove it; exactly one wins.
	k.Schedule(100*sim.Millisecond, primary.Start)
	k.Schedule(200*sim.Millisecond, backup.Start)
	k.Schedule(sim.Second, func() {
		fmt.Printf("[%v] roles: actuator-A=%v actuator-B=%v (controller loop started: %v)\n",
			k.Now(), primary.State(), backup.State(), ctrl.Started != 0)
	})

	// Failure injection at t=30s.
	k.Schedule(30*sim.Second, func() {
		fmt.Printf("[%v] !!! killing actuator-A (operating, %d ticks so far)\n",
			k.Now(), primary.Ticks)
		primary.Fail()
	})

	k.RunUntil(sim.Time(60 * sim.Second))

	fmt.Printf("\nafter 60s: actuator-A=%v (%d ticks), actuator-B=%v (%d ticks, %d takeovers)\n",
		primary.State(), primary.Ticks, backup.State(), backup.Ticks, backup.Takeovers)
	fmt.Printf("controller ran %d control-loop iterations without interruption\n", ctrl.LoopTicks)
	if backup.State() != agents.StateOperating || backup.Takeovers != 1 {
		fmt.Println("UNEXPECTED: fail-over did not complete")
	} else {
		fmt.Println("fail-over completed: the device never lost its actuator")
	}
}
