// FFT farm: the producer/consumer scalability scenario of Section 2.1.
//
// Low-performance producer nodes (no FPU) put vectors into the space
// and ask for their Fast Fourier Transform; high-performance consumer
// nodes take the requests, compute, and put the results back. The
// example runs the same batch against 1, 2 and 4 consumers,
// demonstrating that "the overall system performance are clearly
// proportional to the number of consumers" — and that consumers can
// be discovered dynamically through the registry.
//
//	go run ./examples/fftfarm
package main

import (
	"fmt"
	"math"

	"tpspace/internal/agents"
	"tpspace/internal/registry"
	"tpspace/internal/sim"
	"tpspace/internal/space"
)

const (
	jobs      = 24
	vectorLen = 64
	thinkTime = 200 * sim.Millisecond // per-transform FPU time
)

func runFarm(consumers int) (batch sim.Duration, perJob sim.Duration) {
	k := sim.NewKernel(1)
	sp := space.New(space.SimRuntime{K: k})
	api := agents.LocalSpace{S: sp}
	reg := registry.New(sp)

	for i := 0; i < consumers; i++ {
		name := fmt.Sprintf("fpu-%d", i)
		agents.NewFFTConsumer(k, api, name, thinkTime).Start()
		reg.Register(registry.Service{Name: "fft", Provider: name, Address: name}, space.NoLease)
	}

	producer := agents.NewFFTProducer(k, api, "weak-node")
	// The producer checks the discovery subsystem before offloading.
	if _, ok := reg.Lookup("fft"); !ok {
		panic("no fft service registered")
	}

	samples := make([]float64, vectorLen)
	for i := range samples {
		samples[i] = math.Sin(2 * math.Pi * 3 * float64(i) / vectorLen)
	}
	var lastDone sim.Time
	for j := 0; j < jobs; j++ {
		producer.Submit(samples, func([]complex128) { lastDone = k.Now() })
	}
	k.RunUntil(sim.Time(sim.Hour))
	if producer.Completed != jobs {
		panic("batch incomplete")
	}
	return sim.Duration(lastDone), producer.MeanLatency()
}

func main() {
	fmt.Printf("offloading %d FFTs of %d samples (%v of FPU time each)\n\n",
		jobs, vectorLen, thinkTime)
	fmt.Printf("%-10s %-14s %-14s %s\n", "consumers", "batch time", "mean latency", "speedup")
	var base sim.Duration
	for _, n := range []int{1, 2, 4} {
		batch, lat := runFarm(n)
		if n == 1 {
			base = batch
		}
		fmt.Printf("%-10d %-14v %-14v %.2fx\n", n, batch, lat, float64(base)/float64(batch))
	}
	fmt.Println("\nthe farm scales with consumers, as the paper's producer/consumer argument predicts")
}
