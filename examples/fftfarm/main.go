// FFT farm: the producer/consumer scalability scenario of Section 2.1.
//
// Low-performance producer nodes (no FPU) put vectors into the space
// and ask for their Fast Fourier Transform; high-performance consumer
// nodes take the requests, compute, and put the results back. The
// example is a thin main over the farm pattern of core.RunWorkload —
// the same simulated batch the -workload mode of cmd/tpbench serves —
// run against 1, 2 and 4 consumers, demonstrating that "the overall
// system performance are clearly proportional to the number of
// consumers".
//
//	go run ./examples/fftfarm
package main

import (
	"fmt"
	"time"

	"tpspace/internal/core"
)

const jobs = 24

func main() {
	fmt.Printf("offloading %d FFTs of 64 samples (200ms of FPU time each)\n\n", jobs)
	fmt.Printf("%-10s %-14s %-14s %s\n", "consumers", "batch time", "mean latency", "speedup")
	var base time.Duration
	for _, n := range []int{1, 2, 4} {
		r := core.RunWorkload(core.WorkloadConfig{
			Pattern: "farm", Plane: "sim", Clients: n, Tasks: jobs,
		})
		if r.Units != jobs {
			panic("batch incomplete")
		}
		if n == 1 {
			base = r.Elapsed
		}
		fmt.Printf("%-10d %-14v %-14v %.2fx\n", n, r.Elapsed, r.MeanLat,
			float64(base)/float64(r.Elapsed))
	}
	fmt.Println("\nthe farm scales with consumers, as the paper's producer/consumer argument predicts")
}
