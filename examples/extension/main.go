// Extension: dynamic addition and removal of devices (Section 2.1,
// "Support to system extensions").
//
// Devices exporting a service register themselves in the discovery
// subsystem; devices needing the service locate providers there. The
// example starts a farm with one FFT consumer, hot-adds two more
// mid-run (watch the throughput rise), then stops their lease
// renewals — and the registry forgets them on its own, with no
// centralized control or reconfiguration anywhere.
//
//	go run ./examples/extension
package main

import (
	"fmt"

	"tpspace/internal/agents"
	"tpspace/internal/registry"
	"tpspace/internal/sim"
	"tpspace/internal/space"
)

const (
	tick      = 100 * sim.Millisecond
	leaseTime = 2 * sim.Second // providers renew at half this
)

func main() {
	k := sim.NewKernel(3)
	sp := space.New(space.SimRuntime{K: k})
	api := agents.LocalSpace{S: sp}
	reg := registry.New(sp)

	// Watch the discovery subsystem like a dashboard would.
	reg.Watch("fft", func(s registry.Service) {
		fmt.Printf("[%v] discovery: %s registered (by %s)\n", k.Now(), s.Name, s.Provider)
	})

	// addConsumer brings a device online: it registers with a leased
	// entry and renews on a heartbeat; cancelling the returned stop
	// function simulates unplugging the device.
	addConsumer := func(name string) (stopRenewal func()) {
		c := agents.NewFFTConsumer(k, api, name, 150*sim.Millisecond)
		c.Start()
		r, err := reg.Register(registry.Service{Name: "fft", Provider: name, Address: name}, leaseTime)
		if err != nil {
			panic(err)
		}
		stopHeartbeat := k.Ticker("renew."+name, leaseTime/2, func() {
			if err := r.Renew(leaseTime); err != nil {
				panic(err)
			}
		})
		return func() {
			stopHeartbeat()
			c.Stop()
		}
	}

	// A producer that offloads continuously and reports throughput.
	producer := agents.NewFFTProducer(k, api, "weak-node")
	samples := make([]float64, 32)
	samples[0] = 1
	var submit func()
	submit = func() {
		producer.Submit(samples, func([]complex128) {
			k.ScheduleName("next-job", tick/4, submit)
		})
	}
	submit()
	submit() // keep two jobs in flight so extra consumers matter

	var lastCount uint64
	report := func(label string) {
		completed := producer.Completed
		fmt.Printf("[%v] %-28s providers=%d, jobs completed in window: %d\n",
			k.Now(), label, len(reg.LookupAll("fft")), completed-lastCount)
		lastCount = completed
	}

	addConsumer("fpu-0")
	k.Schedule(5*sim.Second, func() { report("1 consumer baseline") })

	// Hot-add two consumers at t=5s: no master reconfiguration, they
	// just start taking request tuples.
	var stop1, stop2 func()
	k.Schedule(5*sim.Second, func() {
		stop1 = addConsumer("fpu-1")
		stop2 = addConsumer("fpu-2")
	})
	k.Schedule(10*sim.Second, func() { report("after hot-adding 2") })

	// Unplug them at t=10s: their registrations silently lapse when
	// the renewals stop.
	k.Schedule(10*sim.Second, func() { stop1(); stop2() })
	k.Schedule(15*sim.Second, func() {
		report("after unplugging them")
		fmt.Printf("[%v] discovery now lists %d provider(s) — the lapsed leases cleaned themselves up\n",
			k.Now(), len(reg.LookupAll("fft")))
	})

	k.RunUntil(sim.Time(15*sim.Second + 1))
}
