// Quickstart: the tuplespace in five minutes.
//
// This example exercises the whole public surface of the middleware
// in-process: write/read/take with associative matching, blocking
// takes, leases, and notify — the primitives Section 2 of the paper
// describes — using the same client/server stack (XML protocol,
// gateway, RMI) a distributed deployment would use.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tpspace/internal/sim"
	"tpspace/internal/space"
	"tpspace/internal/transport"
	"tpspace/internal/tuple"
	"tpspace/internal/wrapper"
)

func main() {
	// A simulated world: one kernel, one space server, one client
	// connected through the XML/socket wrapper over an in-memory pipe
	// with 1 ms latency.
	k := sim.NewKernel(42)
	sp := space.New(space.SimRuntime{K: k})
	cliEnd, gwEnd := transport.NewSimPipe(k, sim.Millisecond)
	wrapper.NewSimServerStack(k, gwEnd, sp, 0)
	client := wrapper.NewClient(cliEnd)

	// 1. Write an entry: an ordered set of typed values with a type
	//    name, exactly a JavaSpaces Entry.
	reading := tuple.New("reading",
		tuple.String("sensor", "temp-3"),
		tuple.Float("celsius", 21.5),
		tuple.Int("tick", 1),
	)
	client.Write(reading, space.NoLease, func(ok bool, errMsg string) {
		fmt.Printf("write acknowledged at %v (ok=%v)\n", k.Now(), ok)
	})

	// 2. Associative read: match by type and any subset of values;
	//    wildcards are formals.
	anyReading := tuple.New("reading",
		tuple.String("sensor", "temp-3"),
		tuple.AnyFloat("celsius"),
		tuple.AnyInt("tick"),
	)
	client.Read(anyReading, sim.Forever, func(t tuple.Tuple, ok bool) {
		fmt.Printf("read %v at %v\n", t, k.Now())
	})

	// 3. Blocking take: parked server-side until a producer writes.
	jobs := tuple.New("job", tuple.AnyString("op"), tuple.AnyInt("n"))
	client.Take(jobs, sim.Forever, func(t tuple.Tuple, ok bool) {
		fmt.Printf("worker got %v at %v\n", t, k.Now())
	})
	k.Schedule(3*sim.Second, func() {
		client.Write(tuple.New("job", tuple.String("op", "fft"), tuple.Int("n", 1024)),
			space.NoLease, func(bool, string) {})
	})

	// 4. Leases: entries disappear when their lifetime lapses — the
	//    mechanism behind Table 4's "Out of Time".
	client.Write(tuple.New("ephemeral", tuple.String("note", "short-lived")),
		5*sim.Second, func(bool, string) {})
	k.Schedule(8*sim.Second, func() {
		tmpl := tuple.New("ephemeral", tuple.AnyString("note"))
		client.TakeIfExists(tmpl, func(_ tuple.Tuple, ok bool) {
			fmt.Printf("take of expired entry at %v: ok=%v (lease was 5s)\n", k.Now(), ok)
		})
	})

	// 5. Notify: subscribe to future writes.
	alarms := tuple.New("alarm", tuple.AnyString("what"))
	client.Notify(alarms, func(t tuple.Tuple) {
		fmt.Printf("notified: %v at %v\n", t, k.Now())
	}, func(ok bool) {
		if !ok {
			log.Fatal("subscription failed")
		}
	})
	k.Schedule(10*sim.Second, func() {
		client.Write(tuple.New("alarm", tuple.String("what", "overtemp")),
			space.NoLease, func(bool, string) {})
	})

	k.RunUntil(sim.Time(20 * sim.Second))
	st := sp.Stats()
	fmt.Printf("\nspace stats: %d writes, %d reads, %d takes, %d expired, %d notifies\n",
		st.Writes, st.Reads, st.Takes, st.Expired, st.Notifies)
}
