// Busestimate: one co-simulated Figure 7 run, narrated.
//
// This example drives the full estimation pipeline of the paper — C++
// client -> gdb/SystemC co-simulation bridge -> TpWIRE bus model ->
// socket wrapper -> RMI -> SpaceServer — and reports where the time
// goes, for one cell of Table 4 (CBR 0.3 B/s on the 1-wire bus).
//
//	go run ./examples/busestimate
package main

import (
	"fmt"

	"tpspace/internal/core"
	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

func main() {
	cfg := core.DefaultImpactConfig()
	cfg.CBRRate = 0.3

	fmt.Println("Figure 7 case study: estimating tuplespace cost on the TpWIRE bus")
	fmt.Printf("  bus: %.0f bit/s, %d wire(s); entry payload %d bytes; lease %v\n",
		cfg.Bus.BitRate, 1, cfg.PayloadBytes, cfg.Lease)
	fmt.Printf("  background CBR: %g B/s of 1-byte packets (Slave2 -> Slave4)\n\n", cfg.CBRRate)

	res := core.RunImpact(cfg)

	fmt.Printf("timeline:\n")
	fmt.Printf("  t=0        client issues write-entry (XML over the co-simulated bus)\n")
	fmt.Printf("  t=%-8.1f write acknowledged\n", res.WriteDone.Seconds())
	fmt.Printf("  t=%-8.1f client issues take\n", res.TakeIssued.Seconds())
	if res.TakeOK {
		fmt.Printf("  t=%-8.1f take returned the entry -> completion %s\n",
			res.Total.Seconds(), core.ImpactCell(res))
	} else {
		fmt.Printf("  ...        take found nothing: the entry's %v lease lapsed -> %s\n",
			cfg.Lease, core.ImpactCell(res))
	}

	fmt.Printf("\nbus accounting:\n")
	fmt.Printf("  %d frames on the wire, busy %.1fs\n", res.BusFrames, res.BusBusy.Seconds())
	fmt.Printf("  %d background packets delivered\n", res.CBRDelivered)

	// What would the 2-wire upgrade buy? Run the same cell on the
	// scaled bus — the estimation the methodology exists to answer.
	cfg2 := cfg
	cfg2.Wires = 2
	res2 := core.RunImpact(cfg2)
	fmt.Printf("\n2-wire estimate: completion %s", core.ImpactCell(res2))
	if res.TakeOK && res2.TakeOK {
		fmt.Printf(" (%.0f%% of the 1-wire time)", 100*float64(res2.Total)/float64(res.Total))
	}
	fmt.Println()

	// And the raw protocol numbers from the analytic model.
	bus := cfg.Bus
	if err := bus.Normalize(); err != nil {
		panic(err)
	}
	a := tpwire.NewAnalytic(bus)
	fmt.Printf("\nanalytic cross-check: one register transaction to Slave3 costs %v on this bus\n",
		a.TransactionTime(2))
	_ = sim.Second
}
