package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

// Scenario is the JSON description of a bus simulation, so repeated
// experiments live in files instead of flag soup:
//
//	{
//	  "bitrate": 1000000,
//	  "wires": 1,
//	  "errorRate": 0.01,
//	  "seed": 7,
//	  "duration": "10s",
//	  "slaves": [
//	    {"id": 1},
//	    {"id": 2, "meters": 50}
//	  ],
//	  "generators": [
//	    {"kind": "cbr", "from": 1, "to": 2, "rate": 100, "size": 4}
//	  ],
//	  "poller": {"periodBits": 1024, "dma": true, "intDriven": true}
//	}
type Scenario struct {
	Bitrate   float64         `json:"bitrate"`
	Wires     int             `json:"wires"`
	ErrorRate float64         `json:"errorRate"`
	Seed      int64           `json:"seed"`
	Duration  string          `json:"duration"`
	Slaves    []ScenarioSlave `json:"slaves"`
	Gens      []ScenarioGen   `json:"generators"`
	Poller    ScenarioPoller  `json:"poller"`
}

// ScenarioSlave places one slave on the chain.
type ScenarioSlave struct {
	ID uint8 `json:"id"`
	// Meters is the upstream segment length (long segments switch to
	// the differential signal).
	Meters float64 `json:"meters"`
}

// ScenarioGen attaches a traffic generator.
type ScenarioGen struct {
	Kind string  `json:"kind"` // "cbr"
	From uint8   `json:"from"`
	To   uint8   `json:"to"`
	Rate float64 `json:"rate"` // bytes/second
	Size int     `json:"size"` // packet bytes
}

// ScenarioPoller configures the master's service loop.
type ScenarioPoller struct {
	PeriodBits int  `json:"periodBits"`
	DMA        bool `json:"dma"`
	IntDriven  bool `json:"intDriven"`
	PerSweep   int  `json:"perSweep"`
}

// runScenario loads, validates and executes a scenario file, printing
// the same report as the flag-driven path.
func runScenario(path string, trace bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if len(sc.Slaves) == 0 {
		return fmt.Errorf("%s: no slaves", path)
	}
	dur := 10 * time.Second
	if sc.Duration != "" {
		dur, err = time.ParseDuration(sc.Duration)
		if err != nil {
			return fmt.Errorf("%s: duration: %v", path, err)
		}
	}
	seed := sc.Seed
	if seed == 0 {
		seed = 1
	}

	k := sim.NewKernel(seed)
	cfg := tpwire.Config{
		BitRate:        sc.Bitrate,
		Wires:          sc.Wires,
		FrameErrorRate: sc.ErrorRate,
		PollPeriodBits: sc.Poller.PeriodBits,
	}
	chain := tpwire.NewChain(k, cfg)
	if trace {
		chain.SetTracer(func(ev tpwire.TraceEvent) {
			fmt.Printf("%-14v %-8s node=%-3d %s\n", ev.At, ev.Kind, ev.Node, ev.Info)
		})
	}
	boxes := map[uint8]*tpwire.MailboxDevice{}
	var ids []uint8
	for _, s := range sc.Slaves {
		mb := tpwire.NewMailboxDevice(nil)
		chain.AddSlaveAt(s.ID, s.Meters).SetDevice(mb)
		boxes[s.ID] = mb
		ids = append(ids, s.ID)
	}

	poller := tpwire.NewPoller(chain, ids, 0)
	poller.UseDMA = sc.Poller.DMA
	poller.IntDriven = sc.Poller.IntDriven
	if sc.Poller.PerSweep > 0 {
		poller.MaxPerSweep = sc.Poller.PerSweep
	}
	poller.Start()

	sinks := map[uint8]*tpwire.Sink{}
	var gens []*tpwire.CBR
	for i, g := range sc.Gens {
		if g.Kind != "" && g.Kind != "cbr" {
			return fmt.Errorf("%s: generator %d: unknown kind %q", path, i, g.Kind)
		}
		src, ok := boxes[g.From]
		if !ok {
			return fmt.Errorf("%s: generator %d: unknown source slave %d", path, i, g.From)
		}
		if _, ok := boxes[g.To]; !ok {
			return fmt.Errorf("%s: generator %d: unknown destination slave %d", path, i, g.To)
		}
		if sinks[g.To] == nil {
			sinks[g.To] = tpwire.NewSink(k)
			sinks[g.To].Attach(boxes[g.To])
		}
		cbr := tpwire.NewCBR(k, src, g.To, g.Rate, g.Size)
		cbr.Start()
		gens = append(gens, cbr)
	}

	k.RunUntil(sim.Time(sim.DurationOf(dur)))
	for _, g := range gens {
		g.Stop()
	}
	poller.Stop()

	st := chain.Stats()
	fmt.Printf("scenario %s: %d slaves, %v simulated\n", path, len(ids), sim.DurationOf(dur))
	fmt.Printf("wire:   %d TX / %d RX frames, busy %v (utilisation %.1f%%)\n",
		st.TXFrames, st.RXFrames, st.BusyTime,
		100*float64(st.BusyTime)/float64(sim.DurationOf(dur)))
	mst := chain.Master().Stats()
	fmt.Printf("master: %d transactions, %d retries, %d timeouts, %d failures\n",
		mst.Transactions, mst.Retries, mst.Timeouts, mst.Failures)
	pst := poller.Stats()
	fmt.Printf("poller: %d sweeps, %d messages (%d bytes) moved, %d errors\n",
		pst.Sweeps, pst.Serviced, pst.Bytes, pst.Errors)
	for id, s := range sinks {
		fmt.Printf("sink %d: %d packets, %d bytes\n", id, s.Messages, s.Bytes)
	}
	return nil
}
