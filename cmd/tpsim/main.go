// Command tpsim runs a standalone TpWIRE bus simulation and reports
// wire-level statistics — the "separately validate the model" use the
// paper gets from NS-2 before putting the tuplespace on top.
//
//	tpsim -slaves 4 -bitrate 1e6 -cbr 100 -duration 10s
//	tpsim -dump-topology -slaves 3
//	tpsim -trace -duration 50ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

func main() {
	slaves := flag.Int("slaves", 2, "number of slaves on the chain (>= 2)")
	bitrate := flag.Float64("bitrate", 1_000_000, "bus speed in bits/second")
	wires := flag.Int("wires", 1, "number of wires (mode-A n-wire scaling)")
	cbr := flag.Float64("cbr", 10, "CBR load in bytes/second from slave 1 to the last slave")
	pktSize := flag.Int("pkt", 1, "CBR packet size in bytes")
	duration := flag.Duration("duration", 10*time.Second, "simulated duration")
	errRate := flag.Float64("err", 0, "frame error rate [0,1)")
	seed := flag.Int64("seed", 1, "simulation seed")
	dump := flag.Bool("dump-topology", false, "print the Figure 2 daisy chain and exit")
	trace := flag.Bool("trace", false, "print every frame movement")
	scenario := flag.String("scenario", "", "run a JSON scenario file instead of the flag-driven setup")
	flag.Parse()

	if *scenario != "" {
		if err := runScenario(*scenario, *trace); err != nil {
			fmt.Fprintf(os.Stderr, "tpsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *slaves < 2 {
		fmt.Fprintln(os.Stderr, "tpsim: need at least 2 slaves")
		os.Exit(2)
	}

	k := sim.NewKernel(*seed)
	cfg := tpwire.Config{BitRate: *bitrate, Wires: *wires, FrameErrorRate: *errRate}
	chain := tpwire.NewChain(k, cfg)
	var ids []uint8
	boxes := map[uint8]*tpwire.MailboxDevice{}
	for i := 1; i <= *slaves; i++ {
		id := uint8(i)
		mb := tpwire.NewMailboxDevice(nil)
		chain.AddSlave(id).SetDevice(mb)
		boxes[id] = mb
		ids = append(ids, id)
	}
	if *dump {
		fmt.Println(chain.Topology())
		return
	}
	if *trace {
		chain.SetTracer(func(ev tpwire.TraceEvent) {
			fmt.Printf("%-14v %-8s node=%-3d %s\n", ev.At, ev.Kind, ev.Node, ev.Info)
		})
	}

	sink := tpwire.NewSink(k)
	sink.Attach(boxes[uint8(*slaves)])
	poller := tpwire.NewPoller(chain, ids, 0)
	poller.Start()
	gen := tpwire.NewCBR(k, boxes[1], uint8(*slaves), *cbr, *pktSize)
	gen.Start()

	k.RunUntil(sim.Time(sim.DurationOf(*duration)))
	gen.Stop()
	poller.Stop()

	st := chain.Stats()
	mst := chain.Master().Stats()
	pst := poller.Stats()
	fmt.Printf("simulated %v on a %d-slave %d-wire chain at %.0f bit/s\n",
		sim.DurationOf(*duration), *slaves, *wires, *bitrate)
	fmt.Printf("wire:   %d TX frames, %d RX frames, busy %v (utilisation %.1f%%)\n",
		st.TXFrames, st.RXFrames, st.BusyTime,
		100*float64(st.BusyTime)/float64(sim.DurationOf(*duration)))
	fmt.Printf("master: %d transactions, %d retries, %d timeouts, %d failures\n",
		mst.Transactions, mst.Retries, mst.Timeouts, mst.Failures)
	fmt.Printf("poller: %d sweeps, %d pings, %d messages (%d bytes) moved, %d errors\n",
		pst.Sweeps, pst.Pings, pst.Serviced, pst.Bytes, pst.Errors)
	fmt.Printf("sink:   %d packets, %d bytes delivered", sink.Messages, sink.Bytes)
	if gen.Packets() > 0 {
		fmt.Printf(" (%.1f%% of generated)", 100*float64(sink.Messages)/float64(gen.Packets()))
	}
	fmt.Println()
	if st.CorruptedTX+st.CorruptedRX > 0 {
		fmt.Printf("errors: %d TX and %d RX frames corrupted in flight\n", st.CorruptedTX, st.CorruptedRX)
	}
	a := tpwire.NewAnalytic(chain.Config())
	fmt.Printf("analytic: single transaction to the far slave %v, modelled throughput %.1f B/s\n",
		a.TransactionTime(*slaves-1), a.ThroughputBps(*slaves-1))
}
