// Command spacecli is a command-line client for a running
// spaceserver, playing the role of the paper's board-side C++ client
// over TCP.
//
//	spacecli -addr localhost:7010 write  job op=fft n:int=1024
//	spacecli -addr localhost:7010 take   job 'op=?' 'n:int=?'
//	spacecli -addr localhost:7010 read   job 'op=?' 'n:int=?'
//	spacecli -addr localhost:7010 count  job 'op=?' 'n:int=?'
//
// Field syntax: name=value (string), name:int=V, name:float=V,
// name:bool=V, name:bytes=hex. A value of "?" makes the field a
// wildcard (templates only).
//
// To profile the server this client is driving, start spaceserver
// with -mutexprofile / -blockprofile (dumped on SIGINT/SIGTERM), or
// use tpbench's flags of the same names for an offline closed loop.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"tpspace/internal/sim"
	"tpspace/internal/space"
	"tpspace/internal/transport"
	"tpspace/internal/tuple"
	"tpspace/internal/wrapper"
)

func main() {
	addr := flag.String("addr", "localhost:7010", "spaceserver address")
	lease := flag.Duration("lease", 0, "entry lease for writes (0 = forever)")
	timeout := flag.Duration("timeout", 5*time.Second, "blocking-op timeout")
	binary := flag.Bool("binary", false, "use the compact binary request codec (server replies in kind; XML stays the default)")
	flag.Parse()
	args := flag.Args()
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: spacecli [flags] write|take|read|count|takeIfExists|readIfExists <type> [field...]")
		os.Exit(2)
	}
	op, typeName := args[0], args[1]
	tp, err := parseTuple(typeName, args[2:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "spacecli: %v\n", err)
		os.Exit(2)
	}

	conn, err := transport.Dial(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "spacecli: %v\n", err)
		os.Exit(1)
	}
	defer conn.Close()
	var cliOpts []wrapper.ClientOption
	if *binary {
		cliOpts = append(cliOpts, wrapper.WithBinaryCodec())
	}
	cli := wrapper.NewClient(conn, cliOpts...)

	switch op {
	case "write":
		if err := cli.WriteWait(tp, sim.DurationOf(*lease)); err != nil {
			fmt.Fprintf(os.Stderr, "spacecli: write: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("ok")
	case "take", "read":
		var got tuple.Tuple
		var ok bool
		if op == "take" {
			got, ok = cli.TakeWait(tp, sim.DurationOf(*timeout))
		} else {
			got, ok = cli.ReadWait(tp, sim.DurationOf(*timeout))
		}
		if !ok {
			fmt.Println("no match")
			os.Exit(1)
		}
		fmt.Println(got)
	case "count":
		n, ok := cli.CountWait(tp)
		if !ok {
			fmt.Fprintln(os.Stderr, "spacecli: count failed")
			os.Exit(1)
		}
		fmt.Println(n)
	case "takeIfExists", "readIfExists":
		done := make(chan bool, 1)
		var got tuple.Tuple
		cb := func(t tuple.Tuple, ok bool) { got = t; done <- ok }
		if op == "takeIfExists" {
			cli.TakeIfExists(tp, cb)
		} else {
			cli.ReadIfExists(tp, cb)
		}
		if !<-done {
			fmt.Println("no match")
			os.Exit(1)
		}
		fmt.Println(got)
	default:
		fmt.Fprintf(os.Stderr, "spacecli: unknown operation %q\n", op)
		os.Exit(2)
	}
	_ = space.NoLease
}

// parseTuple builds a tuple from "name[:kind]=value" arguments.
func parseTuple(typeName string, fields []string) (tuple.Tuple, error) {
	tp := tuple.Tuple{Type: typeName}
	for _, f := range fields {
		eq := strings.IndexByte(f, '=')
		if eq < 0 {
			return tp, fmt.Errorf("field %q: missing '='", f)
		}
		name, val := f[:eq], f[eq+1:]
		kind := "string"
		if colon := strings.IndexByte(name, ':'); colon >= 0 {
			name, kind = name[:colon], name[colon+1:]
		}
		wild := val == "?"
		var fld tuple.Field
		switch kind {
		case "string":
			if wild {
				fld = tuple.AnyString(name)
			} else {
				fld = tuple.String(name, val)
			}
		case "int":
			if wild {
				fld = tuple.AnyInt(name)
			} else {
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return tp, fmt.Errorf("field %q: %v", f, err)
				}
				fld = tuple.Int(name, v)
			}
		case "float":
			if wild {
				fld = tuple.AnyFloat(name)
			} else {
				v, err := strconv.ParseFloat(val, 64)
				if err != nil {
					return tp, fmt.Errorf("field %q: %v", f, err)
				}
				fld = tuple.Float(name, v)
			}
		case "bool":
			if wild {
				fld = tuple.AnyBool(name)
			} else {
				v, err := strconv.ParseBool(val)
				if err != nil {
					return tp, fmt.Errorf("field %q: %v", f, err)
				}
				fld = tuple.Bool(name, v)
			}
		case "bytes":
			if wild {
				fld = tuple.AnyBytes(name)
			} else {
				v, err := hex.DecodeString(val)
				if err != nil {
					return tp, fmt.Errorf("field %q: %v", f, err)
				}
				fld = tuple.Bytes(name, v)
			}
		default:
			return tp, fmt.Errorf("field %q: unknown kind %q", f, kind)
		}
		tp.Fields = append(tp.Fields, fld)
	}
	return tp, nil
}
