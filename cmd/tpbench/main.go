// Command tpbench regenerates every table and figure of the paper's
// evaluation (Section 5) from the simulation substrate:
//
//	tpbench                  # everything
//	tpbench -table 3         # Table 3 (NS2-TpWIRE validation)
//	tpbench -table 4         # Table 4 (tuplespace impact, full sweep)
//	tpbench -table frames    # Tables 1-2 (frame formats)
//	tpbench -fig 6           # Figure 6 scenario summary
//	tpbench -fig 7           # Figure 7 single case-study run
//	tpbench -chaos           # Table 4 scenario under injected faults
//	tpbench -cluster -chaos  # replicated multi-node cluster under the
//	                         # chaos harness: fault-rate x cluster-size
//	                         # degradation grid with a forced primary
//	                         # crash per cell (-json for the
//	                         # BENCH_cluster.json records)
//	tpbench -spacebench      # tuplespace serving-plane throughput
//	                         # (-shards n compares sharded stores)
//	tpbench -netbench        # network serving-plane load generator:
//	                         # closed-loop clients over loopback TCP and
//	                         # the in-proc pipe vs the unbatched baseline
//	                         # (-clients n -netops n -codec xml|binary,
//	                         # -json for the BENCH_net.json records)
//	tpbench -netbench -scaling
//	                         # multi-core scaling sweep: the
//	                         # pipe/batched/binary closed loop under
//	                         # GOMAXPROCS 1,2,4,8 (points above NumCPU
//	                         # skipped; -json for BENCH_scaling.json)
//	tpbench -leasebench      # lease-engine churn: timing-wheel batched
//	                         # expiry vs the per-entry-timer baseline
//	                         # (-leases n; -json for BENCH_lease.json)
//	tpbench -notifybench     # durable notify sessions under write
//	                         # fan-out with a mid-run reconnect
//	                         # (-sessions n; combinable with -leasebench,
//	                         # -json folds both into BENCH_lease.json)
//	tpbench -workload masterworker|pipeline|stream|farm|all
//	                         # classic tuplespace serving workloads: a
//	                         # deterministic sim row plus kind-routed vs
//	                         # all-shard-baseline rows on the serving
//	                         # plane (-plane sim|local|pipe|tcp,
//	                         # -clients n -wtasks n -shards n -seed n;
//	                         # -json for BENCH_workloads.json)
//
// Independent co-simulations (Table 3 rows, Table 4 cells, sweep
// samples, planner grid points) fan out across all CPUs by default;
// -parallel 1 forces the sequential reference behaviour and any
// worker count produces byte-identical output. -cpuprofile writes a
// pprof profile of the run for hunting harness hot spots;
// -mutexprofile and -blockprofile capture lock contention and
// park/channel waits on the serving plane (the completion-path
// profiles the scaling sweep is tuned against).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"tpspace/internal/core"
	"tpspace/internal/frame"
	"tpspace/internal/sim"
	"tpspace/internal/tpwire"
)

// writeProfile dumps one named runtime profile on exit (deferred, so
// it captures the whole run).
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
	}
}

func main() {
	table := flag.String("table", "", "regenerate one table: 3, 4 or frames")
	fig := flag.Int("fig", 0, "regenerate one figure scenario: 6 or 7")
	realtime := flag.Bool("realtime", false, "pace validation against the wall clock (Table 3)")
	speedup := flag.Float64("speedup", 100, "real-time speedup factor")
	cross := flag.Bool("crossvalidate", false, "cross-validate the packet-level and frame-accurate bus models")
	sweep := flag.Bool("sweep", false, "sweep CBR load and print the completion-time curve (CSV)")
	compare := flag.Bool("compare", false, "compare Ethernet/TCP and TpWIRE substrates (Section 4.3)")
	plan := flag.Bool("plan", false, "search the design space for the cheapest bus meeting the Table 4 requirements")
	chaos := flag.Bool("chaos", false, "replay the Table 4 scenario under injected faults and print the degradation table")
	clusterFlag := flag.Bool("cluster", false, "run the replicated multi-node cluster under the chaos harness (fault-rate x cluster-size grid, forced primary crash; combine with -json for BENCH_cluster.json)")
	spacebench := flag.Bool("spacebench", false, "drive the tuplespace serving plane through the mixed write/take/read/wake workload and print per-op latency")
	netbench := flag.Bool("netbench", false, "drive the network serving plane with closed-loop clients over loopback TCP and the in-proc pipe, against the unbatched baseline")
	scaling := flag.Bool("scaling", false, "with -netbench: sweep the pipe/batched/binary closed loop over GOMAXPROCS 1,2,4,8 (points above NumCPU are skipped; -json for BENCH_scaling.json)")
	leasebench := flag.Bool("leasebench", false, "churn leases through the timing-wheel engine against the per-entry-timer baseline (-leases n, -json for BENCH_lease.json)")
	notifybench := flag.Bool("notifybench", false, "drive durable notify sessions under write fan-out with a mid-run reconnect (-sessions n; -json folds into BENCH_lease.json)")
	leases := flag.Int("leases", 0, "total leases churned by -leasebench (0 = default 10M)")
	sessions := flag.Int("sessions", 0, "live sessions for -notifybench (0 = default 100k)")
	clients := flag.Int("clients", 0, "closed-loop client goroutines for -netbench (0 = default 64)")
	netops := flag.Int("netops", 0, "total requests per -netbench run (0 = default 20000)")
	codec := flag.String("codec", "", "restrict -netbench batched rows to one codec: xml or binary (default both)")
	batchops := flag.Int("batchops", 0, "ops per multi-op batch frame for the -netbench coalescing rows (0 = default 8)")
	workload := flag.String("workload", "", "run a classic serving workload: masterworker, pipeline, stream, farm, or all (sim row plus kind-routed vs all-shard baseline on -plane; -json for BENCH_workloads.json)")
	plane := flag.String("plane", "", "serving plane for -workload: sim, local (direct space, default), pipe, or tcp")
	wtasks := flag.Int("wtasks", 0, "work units per -workload run (0 = pattern default)")
	seed := flag.Int64("seed", 0, "payload/determinism seed for -workload (0 = default 1)")
	jsonOut := flag.Bool("json", false, "emit -netbench results as JSON records (BENCH_net.json schema)")
	shards := flag.Int("shards", 0, "space shards for -spacebench (default 1) and -workload (default 8)")
	parallel := flag.Int("parallel", 0, "worker goroutines for independent simulations (0 = all CPUs, 1 = sequential)")
	nofastpath := flag.Bool("nofastpath", false, "disable burst-mode idle-sweep coalescing (A/B escape hatch; output is byte-identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file (hunting serving-plane lock contention)")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile to this file (channel/park waits on the completion path)")
	flag.Parse()
	workers := *parallel
	noFast := *nofastpath

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}

	if *workload != "" {
		valid := *workload == "all"
		for _, p := range core.WorkloadPatterns {
			if *workload == p {
				valid = true
			}
		}
		if !valid {
			fmt.Fprintf(os.Stderr, "tpbench: -workload must be one of masterworker, pipeline, stream, farm, all; got %q\n", *workload)
			os.Exit(2)
		}
		cfg := core.WorkloadConfig{
			Plane:   *plane,
			Clients: *clients,
			Tasks:   *wtasks,
			Shards:  *shards,
			Seed:    *seed,
		}
		suite := core.RunWorkloadSuite(cfg, *workload)
		if *jsonOut {
			js, err := suite.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(js)
			return
		}
		fmt.Print(suite.Format())
		return
	}
	if *spacebench {
		cfg := core.DefaultSpaceBenchConfig()
		cfg.Shards = *shards
		fmt.Print(core.RunSpaceBench(cfg).Format())
		return
	}
	if *leasebench || *notifybench {
		var leaseRes *core.LeaseBenchResult
		var notifyRes *core.NotifyBenchResult
		if *leasebench {
			cfg := core.LeaseBenchConfig{Leases: *leases}
			r := core.RunLeaseBench(cfg)
			leaseRes = &r
		}
		if *notifybench {
			cfg := core.NotifyBenchConfig{Sessions: *sessions}
			r := core.RunNotifyBench(cfg)
			notifyRes = &r
		}
		if *jsonOut {
			js, err := core.LeaseBenchJSON(leaseRes, notifyRes)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(js)
		} else {
			if leaseRes != nil {
				fmt.Print(leaseRes.Format())
			}
			if notifyRes != nil {
				fmt.Print(notifyRes.Format())
			}
		}
		if notifyRes != nil && notifyRes.Failed() {
			os.Exit(1)
		}
		return
	}
	if *netbench && *scaling {
		cfg := core.DefaultScalingConfig()
		if *clients > 0 {
			cfg.Base.Clients = *clients
		}
		if *netops > 0 {
			cfg.Base.Ops = *netops
		}
		res := core.RunScalingBench(cfg)
		if *jsonOut {
			js, err := res.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(js)
			return
		}
		fmt.Print(res.Format())
		return
	}
	if *netbench {
		cfg := core.DefaultNetBenchConfig()
		if *clients > 0 {
			cfg.Clients = *clients
		}
		if *netops > 0 {
			cfg.Ops = *netops
		}
		if *batchops > 1 {
			cfg.BatchOps = *batchops
		}
		if *codec != "" && *codec != "xml" && *codec != "binary" {
			fmt.Fprintf(os.Stderr, "tpbench: -codec must be xml or binary, got %q\n", *codec)
			os.Exit(2)
		}
		suite := core.RunNetBenchSuite(cfg, *codec)
		if *jsonOut {
			js, err := suite.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(js)
			return
		}
		fmt.Print(suite.Format())
		return
	}
	if *plan {
		fmt.Print(core.RunPlan(core.PlanConfig{
			Requirements: core.DefaultRequirements(),
			Workers:      workers,
			NoFastPath:   noFast,
		}).Format())
		return
	}
	if *clusterFlag {
		cfg := core.DefaultClusterChaosGridConfig()
		cfg.Workers = workers
		grid := core.RunClusterChaosGrid(cfg)
		if *jsonOut {
			js, err := grid.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tpbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Print(js)
		} else {
			fmt.Print(grid.Format())
		}
		if len(grid.Violations()) > 0 {
			os.Exit(1)
		}
		return
	}
	if *chaos {
		cfg := core.DefaultChaosGridConfig()
		cfg.Workers = workers
		cfg.Base.Impact.NoFastPath = noFast
		grid := core.RunChaosGrid(cfg)
		fmt.Print(grid.Format())
		if len(grid.Violations()) > 0 {
			os.Exit(1)
		}
		return
	}

	if *cross {
		printCrossValidation()
		return
	}
	if *sweep {
		printSweep(workers, noFast)
		return
	}
	if *compare {
		fmt.Print(core.FormatComparison(core.CompareSubstrates(core.DefaultCompareConfig())))
		return
	}
	all := *table == "" && *fig == 0
	switch {
	case all:
		printFrames()
		fmt.Println()
		printTable3(*realtime, *speedup, workers)
		fmt.Println()
		printTable4(workers, noFast)
		fmt.Println()
		printCrossValidation()
	case *table == "frames":
		printFrames()
	case *table == "3":
		printTable3(*realtime, *speedup, workers)
	case *table == "4":
		printTable4(workers, noFast)
	case *fig == 6:
		printFig6()
	case *fig == 7:
		printFig7(noFast)
	default:
		fmt.Fprintf(os.Stderr, "tpbench: unknown selection (-table %q -fig %d)\n", *table, *fig)
		os.Exit(2)
	}
}

func printFrames() {
	fmt.Println("Table 1: TX frame format")
	fmt.Println("| 0 | CMD[2:0] | DATA[7:0] | CRC[3:0] |")
	tx := frame.TX{Cmd: frame.CmdWrite, Data: 0xA5}
	fmt.Printf("example: %v  wire image %016b\n", tx, tx.Pack())
	fmt.Println()
	fmt.Println("Table 2: RX frame format")
	fmt.Println("| 0 | INT | TYPE[1:0] | DATA[7:0] | CRC[3:0] |")
	rx := frame.RX{Int: true, Type: frame.TypeData, Data: 0x3C}
	fmt.Printf("example: %v  wire image %016b\n", rx, rx.Pack())
}

func printTable3(realtime bool, speedup float64, workers int) {
	cfg := core.DefaultValidationConfig()
	cfg.Realtime = realtime
	cfg.Speedup = speedup
	cfg.Workers = workers
	res := core.RunValidation(cfg)
	fmt.Print(core.FormatTable3(res))
	if realtime {
		for _, r := range res.Rows {
			fmt.Printf("  frames=%d wall=%v maxlag=%v\n", r.Frames, r.Realtime.Wall, r.Realtime.MaxLag)
		}
	}
}

func printTable4(workers int, noFast bool) {
	cfg := core.DefaultTable4Config()
	cfg.Workers = workers
	cfg.Base.NoFastPath = noFast
	t4 := core.RunTable4(cfg)
	fmt.Print(t4.Format())
}

func printFig6() {
	fmt.Println("Figure 6: NS-2 scheme for TpWIRE model validation")
	fmt.Println("  Master -- Slave1 [CBR] -- Slave2 [Receiver]")
	cfg := core.DefaultValidationConfig()
	cfg.FrameCounts = []int{10_000}
	res := core.RunValidation(cfg)
	fmt.Printf("  10k frames in %v simulated, throughput %.1f B/s, scaling %.3f\n",
		res.Rows[0].Simulated, res.ThroughputBps, res.Rows[0].Scaling)
}

// printSweep extends Table 4 into a curve: exchange completion time
// against background CBR load for both bus widths, CSV to stdout.
// "Out of Time" cells print as empty values.
func printSweep(workers int, noFast bool) {
	cfg := core.DefaultSweepConfig()
	cfg.Workers = workers
	cfg.Base.NoFastPath = noFast
	fmt.Print(core.RunSweep(cfg).CSV())
}

func printCrossValidation() {
	fmt.Println("Model cross-validation (packet-level NS-2 agent vs frame-accurate chain)")
	for _, wires := range []int{1, 2} {
		pkt, frm := core.CrossValidate(tpwire.Config{BitRate: 1_000_000, Wires: wires}, 1, 1000)
		fmt.Printf("  %d-wire, 1000 transactions: packet-level %v, frame-accurate %v (agreement %.6f)\n",
			wires, pkt, frm, float64(pkt)/float64(frm))
	}
}

func printFig7(noFast bool) {
	fmt.Println("Figure 7: TpWIRE case-study configuration")
	fmt.Println("  Master -- Slave1 [C++ client] -- Slave2 [CBR] -- Slave3 [JavaSpace server] -- Slave4 [Receiver]")
	cfg := core.DefaultImpactConfig()
	cfg.CBRRate = 0.3
	cfg.NoFastPath = noFast
	res := core.RunImpact(cfg)
	fmt.Printf("  CBR 0.3 B/s, 1-wire: write ack %.1fs, take issued %.1fs, completion %s\n",
		res.WriteDone.Seconds(), res.TakeIssued.Seconds(), core.ImpactCell(res))
	fmt.Printf("  bus: %d frames, busy %v; background packets delivered: %d\n",
		res.BusFrames, sim.Duration(res.BusBusy), res.CBRDelivered)
}
