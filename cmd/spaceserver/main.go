// Command spaceserver runs the tuplespace as a TCP daemon speaking
// the XML entry protocol — the Java SpaceServer prototype of Section
// 4.1, with the Java/socket wrapper of Figure 4 in front of every
// connection.
//
//	spaceserver -addr :7010
//
// Clients frame each XML request with a 4-byte big-endian length
// prefix (see internal/transport.TCPConn); cmd/spacecli and the
// examples show the client side.
//
// -selftest runs the replicated-cluster chaos cell in-process (a
// 3-node simulated cluster with a forced primary crash, audited for
// lost writes and double takes) and exits — a deployment preflight
// for the cluster plane.
package main

import (
	"flag"
	"log"
	"net"
	"runtime"
	"time"

	"tpspace/internal/core"
	"tpspace/internal/space"
	"tpspace/internal/transport"
	"tpspace/internal/wrapper"
)

func main() {
	addr := flag.String("addr", ":7010", "listen address")
	journalPath := flag.String("journal", "", "journal file for the persistent message store (restored on start)")
	shards := flag.Int("shards", 1, "independently locked space shards (concrete-template traffic scales across them; semantics are identical at any count)")
	workers := flag.Int("workers", runtime.NumCPU(), "gateway dispatch workers per connection (<=1 handles requests sequentially on the reader goroutine)")
	selftest := flag.Bool("selftest", false, "run the replicated-cluster chaos self-test (3 simulated nodes, forced primary crash) and exit")
	flag.Parse()

	if *selftest {
		r := core.RunClusterChaos(core.DefaultClusterChaosConfig())
		if !r.OK() {
			log.Fatalf("spaceserver: cluster self-test violations: %v", r.Violations)
		}
		log.Printf("spaceserver: cluster self-test clean: %d writes acked, %d takes delivered, %d kill(s), crash detected in %v, recovered in %v",
			r.WritesAcked, r.Delivered, r.Kills, r.DetectDelay, r.RecoverDelay)
		return
	}

	sp := space.New(space.NewRealRuntime(), space.WithShards(*shards))
	if *journalPath != "" {
		n, err := sp.ReplayFile(*journalPath)
		if err != nil {
			log.Fatalf("spaceserver: replay %s: %v", *journalPath, err)
		}
		j, err := space.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("spaceserver: journal %s: %v", *journalPath, err)
		}
		sp.SetJournal(j)
		log.Printf("spaceserver: restored %d entries from %s", n, *journalPath)
		go func() {
			for range time.Tick(time.Second) {
				if err := j.Flush(); err != nil {
					log.Printf("spaceserver: journal flush: %v", err)
					return
				}
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("spaceserver: %v", err)
	}
	log.Printf("spaceserver: tuplespace listening on %s", ln.Addr())

	for {
		nc, err := ln.Accept()
		if err != nil {
			log.Printf("spaceserver: accept: %v", err)
			continue
		}
		conn := transport.NewTCPConn(nc)
		conn.OnError = func(err error) {
			log.Printf("spaceserver: %s: %v", nc.RemoteAddr(), err)
		}
		stack := wrapper.NewServerStack(conn, sp, wrapper.WithWorkers(*workers))
		stack.Gateway.OnError = func(err error) {
			log.Printf("spaceserver: %s: gateway: %v", nc.RemoteAddr(), err)
		}
		log.Printf("spaceserver: client %s connected (space size %d)", nc.RemoteAddr(), sp.Size())
	}
}
