// Command spaceserver runs the tuplespace as a TCP daemon speaking
// the XML entry protocol — the Java SpaceServer prototype of Section
// 4.1, with the Java/socket wrapper of Figure 4 in front of every
// connection.
//
//	spaceserver -addr :7010
//
// Clients frame each XML request with a 4-byte big-endian length
// prefix (see internal/transport.TCPConn); cmd/spacecli and the
// examples show the client side.
//
// -selftest runs the replicated-cluster chaos cell in-process (a
// 3-node simulated cluster with a forced primary crash, audited for
// lost writes and double takes) and exits — a deployment preflight
// for the cluster plane.
//
// -mutexprofile and -blockprofile enable the runtime's contention and
// blocking profilers and dump the profile on SIGINT/SIGTERM — the
// live-daemon counterpart of tpbench's flags of the same names, for
// hunting completion-plane lock contention under real client load.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"tpspace/internal/core"
	"tpspace/internal/space"
	"tpspace/internal/transport"
	"tpspace/internal/wrapper"
)

// profileOnExit enables one runtime profiler now and dumps its
// profile to path when the daemon is interrupted.
func profileOnExit(name, path string, enable func()) {
	enable()
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		if f, err := os.Create(path); err != nil {
			log.Printf("spaceserver: %s profile: %v", name, err)
		} else {
			if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
				log.Printf("spaceserver: %s profile: %v", name, err)
			}
			f.Close()
			log.Printf("spaceserver: wrote %s profile to %s", name, path)
		}
		os.Exit(0)
	}()
}

func main() {
	addr := flag.String("addr", ":7010", "listen address")
	journalPath := flag.String("journal", "", "journal file for the persistent message store (restored on start)")
	shards := flag.Int("shards", 1, "independently locked space shards (concrete-template traffic scales across them; semantics are identical at any count)")
	workers := flag.Int("workers", runtime.NumCPU(), "gateway dispatch workers per connection (<=1 handles requests sequentially on the reader goroutine)")
	selftest := flag.Bool("selftest", false, "run the replicated-cluster chaos self-test (3 simulated nodes, forced primary crash) and exit")
	mutexprofile := flag.String("mutexprofile", "", "write a mutex-contention profile here on SIGINT/SIGTERM (see also tpbench -mutexprofile / -blockprofile for offline runs)")
	blockprofile := flag.String("blockprofile", "", "write a blocking profile here on SIGINT/SIGTERM (park/channel waits on the serving plane)")
	flag.Parse()

	if *mutexprofile != "" {
		profileOnExit("mutex", *mutexprofile, func() { runtime.SetMutexProfileFraction(1) })
	}
	if *blockprofile != "" {
		profileOnExit("block", *blockprofile, func() { runtime.SetBlockProfileRate(1) })
	}

	if *selftest {
		r := core.RunClusterChaos(core.DefaultClusterChaosConfig())
		if !r.OK() {
			log.Fatalf("spaceserver: cluster self-test violations: %v", r.Violations)
		}
		log.Printf("spaceserver: cluster self-test clean: %d writes acked, %d takes delivered, %d kill(s), crash detected in %v, recovered in %v",
			r.WritesAcked, r.Delivered, r.Kills, r.DetectDelay, r.RecoverDelay)
		return
	}

	sp := space.New(space.NewRealRuntime(), space.WithShards(*shards))
	if *journalPath != "" {
		n, err := sp.ReplayFile(*journalPath)
		if err != nil {
			log.Fatalf("spaceserver: replay %s: %v", *journalPath, err)
		}
		j, err := space.OpenJournal(*journalPath)
		if err != nil {
			log.Fatalf("spaceserver: journal %s: %v", *journalPath, err)
		}
		sp.SetJournal(j)
		log.Printf("spaceserver: restored %d entries from %s", n, *journalPath)
		go func() {
			for range time.Tick(time.Second) {
				if err := j.Flush(); err != nil {
					log.Printf("spaceserver: journal flush: %v", err)
					return
				}
			}
		}()
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("spaceserver: %v", err)
	}
	log.Printf("spaceserver: tuplespace listening on %s", ln.Addr())

	for {
		nc, err := ln.Accept()
		if err != nil {
			log.Printf("spaceserver: accept: %v", err)
			continue
		}
		conn := transport.NewTCPConn(nc)
		conn.OnError = func(err error) {
			log.Printf("spaceserver: %s: %v", nc.RemoteAddr(), err)
		}
		stack := wrapper.NewServerStack(conn, sp, wrapper.WithWorkers(*workers))
		stack.Gateway.OnError = func(err error) {
			log.Printf("spaceserver: %s: gateway: %v", nc.RemoteAddr(), err)
		}
		log.Printf("spaceserver: client %s connected (space size %d)", nc.RemoteAddr(), sp.Size())
	}
}
