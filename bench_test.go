// Benchmarks regenerating the paper's evaluation (one bench per table
// and figure) plus the ablation studies of DESIGN.md. Absolute wall
// times here measure the simulator; the paper-facing quantities
// (simulated seconds, scaling factors, completion times) are emitted
// as custom metrics via b.ReportMetric.
//
//	go test -bench=. -benchmem
package tpspace_test

import (
	"fmt"
	"testing"

	"tpspace/internal/agents"
	"tpspace/internal/core"
	"tpspace/internal/crc"
	"tpspace/internal/frame"
	"tpspace/internal/sim"
	"tpspace/internal/space"
	"tpspace/internal/tpwire"
	"tpspace/internal/transport"
	"tpspace/internal/tuple"
	"tpspace/internal/wrapper"
	"tpspace/internal/xmlcodec"
)

//
// Tables 1-2: frame codec.
//

// BenchmarkTable1TXFrame measures TX frame pack/unpack (Table 1).
func BenchmarkTable1TXFrame(b *testing.B) {
	f := frame.TX{Cmd: frame.CmdWrite, Data: 0xA5}
	for i := 0; i < b.N; i++ {
		w := f.Pack()
		if _, err := frame.UnpackTX(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2RXFrame measures RX frame pack/unpack (Table 2).
func BenchmarkTable2RXFrame(b *testing.B) {
	f := frame.RX{Int: true, Type: frame.TypeData, Data: 0x3C}
	for i := 0; i < b.N; i++ {
		w := f.Pack()
		if _, err := frame.UnpackRX(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRC4 measures the bit-serial TpWIRE CRC engine.
func BenchmarkCRC4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		crc.TpWIRETX(uint8(i)&7, uint8(i))
	}
}

//
// Table 3 / Figure 6: validation.
//

// BenchmarkTable3Validation regenerates Table 3 and reports the mean
// scaling factor and simulated seconds per 10k frames.
func BenchmarkTable3Validation(b *testing.B) {
	cfg := core.DefaultValidationConfig()
	cfg.FrameCounts = []int{10_000}
	var res core.ValidationResult
	for i := 0; i < b.N; i++ {
		res = core.RunValidation(cfg)
	}
	b.ReportMetric(res.MeanScaling, "scaling")
	b.ReportMetric(res.Rows[0].Simulated.Seconds(), "sim-s/10kframes")
	b.ReportMetric(res.ThroughputBps, "payload-B/s")
}

// BenchmarkFig6Throughput measures the raw validation-topology
// throughput at several bus speeds.
func BenchmarkFig6Throughput(b *testing.B) {
	for _, rate := range []float64{9600, 115_200, 1_000_000} {
		b.Run(fmt.Sprintf("bitrate=%.0f", rate), func(b *testing.B) {
			cfg := core.DefaultValidationConfig()
			cfg.Bus.BitRate = rate
			cfg.FrameCounts = []int{5000}
			var res core.ValidationResult
			for i := 0; i < b.N; i++ {
				res = core.RunValidation(cfg)
			}
			b.ReportMetric(res.ThroughputBps, "payload-B/s")
		})
	}
}

//
// Table 4 / Figure 7: tuplespace impact.
//

// BenchmarkTable4Impact regenerates the full Table 4 sweep at the
// calibrated operating point and reports every cell (seconds;
// 0 = Out of Time).
func BenchmarkTable4Impact(b *testing.B) {
	cfg := core.DefaultTable4Config()
	var t4 core.Table4
	for i := 0; i < b.N; i++ {
		t4 = core.RunTable4(cfg)
	}
	for i, rate := range t4.CBRRates {
		for j, w := range t4.Wires {
			cell := t4.Cells[i][j]
			v := cell.Total.Seconds()
			if cell.OutOfTime() {
				v = 0
			}
			b.ReportMetric(v, fmt.Sprintf("cbr%g-%dw-s", rate, w))
		}
	}
}

// BenchmarkFig7CaseStudy runs the single Figure 7 cell (CBR 0.3 B/s,
// 1-wire) and reports its timeline.
func BenchmarkFig7CaseStudy(b *testing.B) {
	cfg := core.DefaultImpactConfig()
	cfg.CBRRate = 0.3
	var res core.ImpactResult
	for i := 0; i < b.N; i++ {
		res = core.RunImpact(cfg)
	}
	b.ReportMetric(res.WriteDone.Seconds(), "write-s")
	b.ReportMetric(res.Total.Seconds(), "total-s")
	b.ReportMetric(float64(res.BusFrames), "frames")
}

// BenchmarkPlanGrid regenerates the full -plan design grid (30
// co-simulated grid points, the burst fast path's headline workload)
// and reports how many simulated seconds one grid pass models —
// scripts/bench.sh records the pair (ns/op, sim-s) as the
// machine-readable baseline in BENCH_plan.json.
func BenchmarkPlanGrid(b *testing.B) {
	var plan core.Plan
	for i := 0; i < b.N; i++ {
		plan = core.RunPlan(core.PlanConfig{Requirements: core.DefaultRequirements()})
	}
	req := plan.Requirements
	// Each point simulates until its take completes or the planner's
	// horizon (3x the take+lease budget) expires.
	horizon := 3 * (req.TakeDelay + req.Lease).Seconds()
	simS := 0.0
	for _, o := range plan.Explored {
		if o.Completion > 0 {
			simS += o.Completion.Seconds()
		} else {
			simS += horizon
		}
	}
	b.ReportMetric(simS, "sim-s")
	b.ReportMetric(float64(len(plan.Explored)), "points")
}

//
// Ablations (DESIGN.md A1-A4).
//

// BenchmarkAblationNWireModes compares the two n-wire scalings of
// Section 3.2 moving two independent 200-byte flows: mode A (one bus,
// parallel data lanes) vs mode B (two parallel 1-wire buses).
func BenchmarkAblationNWireModes(b *testing.B) {
	runModeA := func() sim.Duration {
		k := sim.NewKernel(1)
		c := tpwire.NewChain(k, tpwire.Config{BitRate: 10_000, Wires: 2})
		var done [2]sim.Time
		var boxes [4]*tpwire.MailboxDevice
		for i := 0; i < 4; i++ {
			mb := tpwire.NewMailboxDevice(nil)
			c.AddSlave(uint8(i + 1)).SetDevice(mb)
			boxes[i] = mb
		}
		for f := 0; f < 2; f++ {
			f := f
			boxes[2+f].SetOnReceive(func(tpwire.Message) { done[f] = k.Now() })
		}
		tpwire.NewPoller(c, []uint8{1, 2, 3, 4}, 0).Start()
		boxes[0].Send(3, make([]byte, 200))
		boxes[1].Send(4, make([]byte, 200))
		k.RunUntil(sim.Time(300 * sim.Second))
		last := done[0]
		if done[1] > last {
			last = done[1]
		}
		return sim.Duration(last)
	}
	runModeB := func() sim.Duration {
		k := sim.NewKernel(1)
		var done [2]sim.Time
		pb := tpwire.NewParallelBus(k, 2, tpwire.Config{BitRate: 10_000}, func(bus int, c *tpwire.Chain) {
			src := tpwire.NewMailboxDevice(nil)
			c.AddSlave(1).SetDevice(src)
			dst := tpwire.NewMailboxDevice(func(tpwire.Message) { done[bus] = k.Now() })
			c.AddSlave(2).SetDevice(dst)
			tpwire.NewPoller(c, []uint8{1, 2}, 0).Start()
		})
		for f := 0; f < 2; f++ {
			pb.Bus(f).Slave(1).Device().(*tpwire.MailboxDevice).Send(2, make([]byte, 200))
		}
		k.RunUntil(sim.Time(300 * sim.Second))
		last := done[0]
		if done[1] > last {
			last = done[1]
		}
		return sim.Duration(last)
	}
	var a, bt sim.Duration
	for i := 0; i < b.N; i++ {
		a = runModeA()
		bt = runModeB()
	}
	b.ReportMetric(a.Seconds(), "modeA-s")
	b.ReportMetric(bt.Seconds(), "modeB-s")
}

// BenchmarkAblationRetries sweeps the retry budget against a 5% frame
// error rate and reports delivery completeness.
func BenchmarkAblationRetries(b *testing.B) {
	for _, retries := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("retries=%d", retries), func(b *testing.B) {
			var delivered uint64
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(int64(i + 1))
				c := tpwire.NewChain(k, tpwire.Config{FrameErrorRate: 0.05, Retries: retries})
				src := tpwire.NewMailboxDevice(nil)
				c.AddSlave(1).SetDevice(src)
				var got uint64
				dst := tpwire.NewMailboxDevice(func(tpwire.Message) { got++ })
				c.AddSlave(2).SetDevice(dst)
				tpwire.NewPoller(c, []uint8{1, 2}, 0).Start()
				for m := 0; m < 20; m++ {
					src.Send(2, []byte{byte(m), 0xFF})
				}
				k.RunUntil(sim.Time(10 * sim.Second))
				delivered = got
			}
			b.ReportMetric(float64(delivered)/20*100, "delivered-%")
		})
	}
}

// BenchmarkAblationEncoding compares the XML entry representation the
// paper uses with a compact binary one (A3): bytes on the wire per
// entry.
func BenchmarkAblationEncoding(b *testing.B) {
	entry := tuple.New("case-study",
		tuple.Int("id", 1),
		tuple.Bytes("vector", make([]byte, 24)),
	)
	b.Run("xml", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			buf, err := xmlcodec.MarshalRequest(xmlcodec.NewRequest(1, xmlcodec.OpWrite, &entry))
			if err != nil {
				b.Fatal(err)
			}
			n = len(buf)
		}
		b.ReportMetric(float64(n), "wire-bytes")
	})
	b.Run("binary", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = len(xmlcodec.EncodeTupleBinary(entry))
		}
		b.ReportMetric(float64(n), "wire-bytes")
	})
}

// BenchmarkAblationPolling sweeps the master's idle poll period and
// reports the take latency of a single small exchange.
func BenchmarkAblationPolling(b *testing.B) {
	for _, pollBits := range []int{256, 1024, 1920} {
		b.Run(fmt.Sprintf("pollbits=%d", pollBits), func(b *testing.B) {
			var latency sim.Duration
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(1)
				c := tpwire.NewChain(k, tpwire.Config{BitRate: 100_000, PollPeriodBits: pollBits})
				src := tpwire.NewMailboxDevice(nil)
				c.AddSlave(1).SetDevice(src)
				var doneAt sim.Time
				dst := tpwire.NewMailboxDevice(func(tpwire.Message) { doneAt = k.Now() })
				c.AddSlave(2).SetDevice(dst)
				tpwire.NewPoller(c, []uint8{1, 2}, 0).Start()
				// Inject mid-idle so the poll period matters.
				k.Schedule(50*sim.Millisecond, func() { src.Send(2, []byte("x")) })
				k.RunUntil(sim.Time(2 * sim.Second))
				latency = doneAt.Sub(sim.Time(50 * sim.Millisecond))
			}
			b.ReportMetric(latency.Seconds()*1000, "take-latency-ms")
		})
	}
}

//
// Middleware micro-benchmarks.
//

// BenchmarkTupleMatch measures associative matching.
func BenchmarkTupleMatch(b *testing.B) {
	data := tuple.New("job", tuple.String("op", "fft"), tuple.Int("n", 1024),
		tuple.Bytes("v", make([]byte, 32)))
	tmpl := tuple.New("job", tuple.AnyString("op"), tuple.Int("n", 1024), tuple.AnyBytes("v"))
	for i := 0; i < b.N; i++ {
		if !tmpl.Matches(data) {
			b.Fatal("no match")
		}
	}
}

// BenchmarkSpaceWriteTake measures a local write+take pair.
func BenchmarkSpaceWriteTake(b *testing.B) {
	k := sim.NewKernel(1)
	sp := space.New(space.SimRuntime{K: k})
	entry := tuple.New("job", tuple.String("op", "fft"), tuple.Int("n", 1024))
	tmpl := tuple.New("job", tuple.AnyString("op"), tuple.AnyInt("n"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sp.Write(entry, space.NoLease); err != nil {
			b.Fatal(err)
		}
		if _, ok := sp.TakeIfExists(tmpl); !ok {
			b.Fatal("take failed")
		}
	}
}

// BenchmarkXMLRoundTrip measures the XML request codec.
func BenchmarkXMLRoundTrip(b *testing.B) {
	entry := tuple.New("job", tuple.String("op", "fft"), tuple.Int("n", 1024),
		tuple.Bytes("v", make([]byte, 32)))
	for i := 0; i < b.N; i++ {
		buf, err := xmlcodec.MarshalRequest(xmlcodec.NewRequest(uint64(i), xmlcodec.OpWrite, &entry))
		if err != nil {
			b.Fatal(err)
		}
		req, err := xmlcodec.UnmarshalRequest(buf)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := req.Tuple(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrapperRoundTrip measures a full client->gateway->RMI->
// space->back exchange over loopback transports (wall clock, no
// simulated latency).
func BenchmarkWrapperRoundTrip(b *testing.B) {
	sp := space.New(space.NewRealRuntime())
	cliEnd, gwEnd := transport.NewLoopback()
	wrapper.NewServerStack(gwEnd, sp)
	cli := wrapper.NewClient(cliEnd)
	entry := tuple.New("job", tuple.String("op", "fft"), tuple.Int("n", 1024))
	tmpl := tuple.New("job", tuple.AnyString("op"), tuple.AnyInt("n"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.WriteWait(entry, space.NoLease); err != nil {
			b.Fatal(err)
		}
		if _, ok := cli.TakeWait(tmpl, sim.Duration(sim.Second)); !ok {
			b.Fatal("take failed")
		}
	}
}

// BenchmarkSimKernel measures raw event throughput of the DES kernel.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel(1)
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			k.Schedule(sim.Microsecond, next)
		}
	}
	b.ResetTimer()
	k.Schedule(0, next)
	k.Run()
}

// BenchmarkBusTransaction measures the simulator cost of one TpWIRE
// register transaction end to end.
func BenchmarkBusTransaction(b *testing.B) {
	k := sim.NewKernel(1)
	c := tpwire.NewChain(k, tpwire.Config{})
	c.AddSlave(1)
	done := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Master().WriteReg(1, false, uint8(i), uint8(i), func(error) { done++ })
		k.Run()
	}
	if done != b.N {
		b.Fatalf("completed %d/%d", done, b.N)
	}
}

// BenchmarkFFTFarmScaling reports batch completion (simulated
// seconds) for 1, 2 and 4 consumers — the Section 2.1 scalability
// argument as a measurement.
func BenchmarkFFTFarmScaling(b *testing.B) {
	for _, consumers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			var batch sim.Duration
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel(1)
				sp := space.New(space.SimRuntime{K: k})
				api := agents.LocalSpace{S: sp}
				for c := 0; c < consumers; c++ {
					agents.NewFFTConsumer(k, api, "fpu", 100*sim.Millisecond).Start()
				}
				prod := agents.NewFFTProducer(k, api, "weak")
				var lastDone sim.Time
				samples := make([]float64, 32)
				for j := 0; j < 16; j++ {
					prod.Submit(samples, func([]complex128) { lastDone = k.Now() })
				}
				k.RunUntil(sim.Time(sim.Hour))
				batch = sim.Duration(lastDone)
			}
			b.ReportMetric(batch.Seconds(), "batch-sim-s")
		})
	}
}

// BenchmarkFFT measures the radix-2 kernel itself.
func BenchmarkFFT(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agents.FFT(x)
	}
}

// BenchmarkAblationDMA (A5) compares moving a 400-byte message with
// per-byte FIFO frames vs DMA bursts (the DMA counter register put to
// use).
func BenchmarkAblationDMA(b *testing.B) {
	move := func(useDMA bool) sim.Duration {
		k := sim.NewKernel(1)
		c := tpwire.NewChain(k, tpwire.Config{BitRate: 10_000})
		src := tpwire.NewMailboxDevice(nil)
		c.AddSlave(1).SetDevice(src)
		var doneAt sim.Time
		dst := tpwire.NewMailboxDevice(func(tpwire.Message) { doneAt = k.Now() })
		c.AddSlave(2).SetDevice(dst)
		p := tpwire.NewPoller(c, []uint8{1, 2}, 0)
		p.UseDMA = useDMA
		p.Start()
		src.Send(2, make([]byte, 400))
		k.RunUntil(sim.Time(300 * sim.Second))
		return sim.Duration(doneAt)
	}
	var fifo, dma sim.Duration
	for i := 0; i < b.N; i++ {
		fifo = move(false)
		dma = move(true)
	}
	b.ReportMetric(fifo.Seconds(), "fifo-s")
	b.ReportMetric(dma.Seconds(), "dma-s")
	b.ReportMetric(float64(fifo)/float64(dma), "speedup")
}

// BenchmarkAblationIntPolling (A6) compares idle bus load of the
// full-scan poller against the INT-bit-driven one on a 6-slave chain.
func BenchmarkAblationIntPolling(b *testing.B) {
	idleFrames := func(intDriven bool) uint64 {
		k := sim.NewKernel(1)
		c := tpwire.NewChain(k, tpwire.Config{})
		ids := []uint8{1, 2, 3, 4, 5, 6}
		for _, id := range ids {
			c.AddSlave(id).SetDevice(tpwire.NewMailboxDevice(nil))
		}
		p := tpwire.NewPoller(c, ids, 0)
		p.IntDriven = intDriven
		p.Start()
		k.RunUntil(sim.Time(sim.Second))
		p.Stop()
		return c.Stats().TXFrames
	}
	var full, lean uint64
	for i := 0; i < b.N; i++ {
		full = idleFrames(false)
		lean = idleFrames(true)
	}
	b.ReportMetric(float64(full), "fullscan-frames/s")
	b.ReportMetric(float64(lean), "intdriven-frames/s")
}

// BenchmarkCrossValidation reports the timing agreement between the
// packet-level (NS-2-style) and frame-accurate TpWIRE models — the
// paper's validation step with simulation on both sides.
func BenchmarkCrossValidation(b *testing.B) {
	var pkt, frm sim.Duration
	for i := 0; i < b.N; i++ {
		pkt, frm = core.CrossValidate(tpwire.Config{BitRate: 1_000_000}, 1, 1000)
	}
	b.ReportMetric(pkt.Seconds(), "packet-model-s")
	b.ReportMetric(frm.Seconds(), "frame-model-s")
	b.ReportMetric(float64(pkt)/float64(frm), "agreement")
}

// BenchmarkSpaceTypedLookup shows the type index at work: takes
// against one type among many are independent of the other types'
// population.
func BenchmarkSpaceTypedLookup(b *testing.B) {
	for _, types := range []int{1, 50} {
		b.Run(fmt.Sprintf("types=%d", types), func(b *testing.B) {
			k := sim.NewKernel(1)
			sp := space.New(space.SimRuntime{K: k})
			// Populate every type with 200 entries.
			for ty := 0; ty < types; ty++ {
				for i := 0; i < 200; i++ {
					sp.Write(tuple.New(fmt.Sprintf("t%d", ty), tuple.Int("v", int64(i))), space.NoLease)
				}
			}
			target := fmt.Sprintf("t%d", types-1)
			tmpl := tuple.New(target, tuple.AnyInt("v"))
			entry := tuple.New(target, tuple.Int("v", 999))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := sp.TakeIfExists(tmpl); !ok {
					b.Fatal("miss")
				}
				sp.Write(entry, space.NoLease)
			}
		})
	}
}
