// Package tpspace reproduces "Estimation of Bus Performance for a
// Tuplespace in an Embedded Architecture" (Drago, Fummi, Monguzzi,
// Perbellini, Poncino — DATE 2003): a JavaSpaces-like tuplespace
// middleware for factory automation, a frame-accurate model of the
// TpWIRE 1-wire/n-wire embedded bus, the co-simulation glue that
// couples them, and the estimation methodology that predicts bus
// performance under tuplespace traffic.
//
// The code lives under internal/; the runnable surface is:
//
//	cmd/tpbench      regenerate every table and figure of the paper
//	cmd/tpsim        standalone bus simulations
//	cmd/spaceserver  the tuplespace as a TCP daemon
//	cmd/spacecli     command-line space client
//	examples/...     quickstart, failover, fftfarm, busestimate
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package tpspace
