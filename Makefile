# Convenience targets; scripts/check.sh is the authoritative gate.

.PHONY: check test bench build vet

check:
	sh scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Full benchmark pass: repo-root table/figure benches plus the
# per-package kernel micro-benches.
bench:
	go test -run '^$$' -bench . -benchmem . ./internal/sim/
