# Convenience targets; scripts/check.sh is the authoritative gate.

.PHONY: check test bench bench-all build vet

check:
	sh scripts/check.sh

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Machine-readable bench baseline: kernel calendar micro-benches and
# one full planner grid pass, written to BENCH_kernel.json and
# BENCH_plan.json. For the full human-readable table/figure bench
# pass use `make bench-all`.
bench:
	sh scripts/bench.sh

bench-all:
	go test -run '^$$' -bench . -benchmem . ./internal/sim/
