module tpspace

go 1.22
